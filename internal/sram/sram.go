// Package sram models a battery-backed SRAM write buffer in front of a
// storage device (§2, §5.5): small synchronous writes complete at SRAM
// speed and are held while the device is unavailable (a spun-down disk
// stays spun down), draining in the background once the device is active
// anyway or the buffer fills — the Quantum Daytona's "deferred spin-up"
// policy.
//
// Writes to SRAM are assumed recoverable after a crash, so buffering a
// synchronous write is safe (§5.5). A write waits only when the buffer is
// full and the drain has not finished ("if writes are large or are
// clustered in time, such that the write buffer frequently fills, then many
// writes will be delayed as they wait for the disk").
//
// The buffer wraps any device.Device, which also supports the paper's
// suggested extension of putting SRAM in front of flash (§5.1, §7).
package sram

import (
	"fmt"
	"sort"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// flushFile is the file ID used for flush writes. It is outside any trace's
// file ID space, so the device charges a full seek for the first flush
// write of a batch.
const flushFile = ^uint32(0)

// highWaterFraction is the fill level at which the buffer starts a
// background drain. Runs of writes below this mark never wake a sleeping
// disk at all (the deferred spin-up benefit).
const highWaterFraction = 0.25

// spinStater is implemented by devices with a spin state (the magnetic
// disk); the buffer uses it to decide when draining is cheap.
type spinStater interface {
	Spinning(now units.Time) bool
}

// backgrounder is implemented by devices that can absorb writes off the
// host's critical path (the magnetic disk services host requests ahead of
// writeback). Drains prefer it; devices without it are drained through the
// normal access path.
type backgrounder interface {
	Background(req device.Request) units.Time
}

// Buffer is a battery-backed SRAM write buffer wrapping a storage device.
type Buffer struct {
	params    device.MemoryParams
	size      units.Bytes
	blockSize units.Bytes
	capBlocks int
	inner     device.Device
	meter     *energy.Meter

	// dirty holds buffered block indices.
	dirty map[int64]struct{}
	// drainDoneAt is when the in-flight background drain completes; writes
	// that find the buffer full wait for it.
	drainDoneAt units.Time

	lastUpdate units.Time

	flushes       int64
	overflowStall units.Time
	stalledWrites int64

	// Observability (nil-safe no-ops without a scope).
	sc           *obs.Scope
	evName       string
	cFlushes     *obs.Counter
	cFlushedBlks *obs.Counter
	cStalls      *obs.Counter

	// inj records recovery activity after injected power failures (nil when
	// fault injection is off).
	inj *fault.Injector
}

// Option configures a Buffer.
type Option func(*Buffer)

// WithScope attaches an observability scope: flush/stall counters and
// events. A nil scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(b *Buffer) {
		b.sc = sc
		b.cFlushes = sc.Counter("sram.flushes")
		b.cFlushedBlks = sc.Counter("sram.flushed_blocks")
		b.cStalls = sc.Counter("sram.stalled_writes")
	}
}

// WithFaults attaches a fault injector so power-failure recovery can record
// the blocks it replays from the battery-backed buffer. A nil injector is
// free.
func WithFaults(in *fault.Injector) Option {
	return func(b *Buffer) { b.inj = in }
}

// New wraps inner with an SRAM write buffer of the given size.
func New(params device.MemoryParams, size, blockSize units.Bytes, inner device.Device, opts ...Option) (*Buffer, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("sram: block size must be positive")
	}
	if size < blockSize {
		return nil, fmt.Errorf("sram: buffer size %v below one %v block", size, blockSize)
	}
	b := &Buffer{
		params:    params,
		size:      size,
		blockSize: blockSize,
		capBlocks: int(size / blockSize),
		inner:     inner,
		meter:     energy.NewMeter(),
		dirty:     make(map[int64]struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	b.evName = b.Name()
	return b, nil
}

// Name implements device.Device.
func (b *Buffer) Name() string {
	return fmt.Sprintf("%s+sram%v", b.inner.Name(), b.size)
}

// Meter implements device.Device and returns the SRAM's own meter; the
// wrapped device keeps its own accounting.
func (b *Buffer) Meter() *energy.Meter { return b.meter }

// Inner returns the wrapped device.
func (b *Buffer) Inner() device.Device { return b.inner }

// Flushes returns how many drains were performed.
func (b *Buffer) Flushes() int64 { return b.flushes }

// StalledWrites returns how many writes waited for a drain.
func (b *Buffer) StalledWrites() int64 { return b.stalledWrites }

// OverflowStall returns the cumulative time writes spent waiting for space.
func (b *Buffer) OverflowStall() units.Time { return b.overflowStall }

// BufferedBytes returns the amount of dirty data currently held.
func (b *Buffer) BufferedBytes() units.Bytes {
	return units.Bytes(len(b.dirty)) * b.blockSize
}

// Idle implements device.Device.
func (b *Buffer) Idle(now units.Time) {
	b.accrueStandby(now)
	b.inner.Idle(now)
}

// Finish implements device.Device. Buffered data stays in SRAM (it is
// battery-backed); spinning the disk up at the end of the simulation just
// to flush would distort the energy accounting.
func (b *Buffer) Finish(now units.Time) {
	b.accrueStandby(now)
	b.inner.Finish(now)
}

// Access implements device.Device.
func (b *Buffer) Access(req device.Request) units.Time {
	switch req.Op {
	case trace.Delete:
		b.drop(req.Addr, req.Size)
		return b.inner.Access(req)
	case trace.Read:
		return b.read(req)
	case trace.Write:
		return b.write(req)
	default:
		panic(fmt.Sprintf("sram: unknown op %v", req.Op))
	}
}

// ReadExtent services a coalesced run of read requests back to back,
// equivalent by construction to Idle(reqs[k].Time) followed by
// Access(reqs[k]) for each k in order. completions[k] receives request k's
// completion time.
func (b *Buffer) ReadExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		b.Idle(reqs[k].Time)
		completions[k] = b.Access(reqs[k])
	}
}

// WriteExtent is ReadExtent's write-path counterpart.
func (b *Buffer) WriteExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		b.Idle(reqs[k].Time)
		completions[k] = b.Access(reqs[k])
	}
}

// read serves fully-buffered reads from SRAM; otherwise it flushes any
// overlapping dirty blocks (the device copy must be current before the
// device services the read) and forwards to the device. A read that forced
// a spin-up drains the rest of the buffer afterwards, off the critical
// path, while the platters turn.
func (b *Buffer) read(req device.Request) units.Time {
	first, last := b.blockRange(req.Addr, req.Size)
	allBuffered := len(b.dirty) > 0
	anyBuffered := false
	for blk := first; blk <= last; blk++ {
		if _, ok := b.dirty[blk]; ok {
			anyBuffered = true
		} else {
			allBuffered = false
		}
	}
	if allBuffered {
		return req.Time + b.accessTime(req.Size)
	}
	start := req.Time
	if anyBuffered {
		start = b.flushRange(start, first, last)
	}
	wasSpinning := true
	if ss, ok := b.inner.(spinStater); ok {
		wasSpinning = ss.Spinning(start)
	}
	req.Time = start
	completion := b.inner.Access(req)
	if !wasSpinning && len(b.dirty) > 0 {
		b.drain(completion)
	}
	return completion
}

// write buffers the data, draining in the background per the deferred
// spin-up policy; writes larger than the whole buffer bypass it.
func (b *Buffer) write(req device.Request) units.Time {
	if req.Size > b.size {
		// Oversized write: drop overlapping buffered blocks (superseded)
		// and write through.
		b.drop(req.Addr, req.Size)
		return b.inner.Access(req)
	}
	first, last := b.blockRange(req.Addr, req.Size)
	newBlocks := 0
	for blk := first; blk <= last; blk++ {
		if _, ok := b.dirty[blk]; !ok {
			newBlocks++
		}
	}
	start := req.Time
	if len(b.dirty)+newBlocks > b.capBlocks {
		if b.drainDoneAt <= start {
			// Full with no drain in flight: kick one off in the background;
			// the freed space is available immediately in model state.
			b.drain(start)
		} else {
			// Full while a drain is already running (writes arriving
			// faster than the device absorbs them): the write must wait.
			b.overflowStall += b.drainDoneAt - start
			b.stalledWrites++
			b.cStalls.Inc()
			if b.sc.Tracing() {
				b.sc.Emit(obs.Event{T: int64(start), Kind: obs.EvSRAMStall, Dev: b.evName,
					Dur: int64(b.drainDoneAt - start)})
			}
			start = b.drainDoneAt
		}
	}
	for blk := first; blk <= last; blk++ {
		b.dirty[blk] = struct{}{}
	}
	completion := start + b.accessTime(req.Size)

	// High-water background drain: once the buffer is half full, spin the
	// device up (if needed) and drain without delaying the host. Runs of
	// writes smaller than the high-water mark still complete without ever
	// waking a sleeping disk — the deferred spin-up benefit.
	if len(b.dirty) >= int(highWaterFraction*float64(b.capBlocks)) && b.drainDoneAt <= completion {
		b.drain(completion)
	}
	return completion
}

// drain writes the whole buffer back in the background starting at now.
// The buffer empties immediately in model state (new writes can land) while
// the device stays busy until drainDoneAt. Returns the completion time of
// the first flushed extent (when the first freed space is truly available).
func (b *Buffer) drain(now units.Time) units.Time {
	blocks := make([]int64, 0, len(b.dirty))
	for blk := range b.dirty {
		blocks = append(blocks, blk)
	}
	firstDone := b.flushBlocks(now, blocks)
	return firstDone
}

// flushRange writes back buffered blocks overlapping [first, last],
// returning the completion time.
func (b *Buffer) flushRange(now units.Time, first, last int64) units.Time {
	var blocks []int64
	for blk := first; blk <= last; blk++ {
		if _, ok := b.dirty[blk]; ok {
			blocks = append(blocks, blk)
		}
	}
	return b.flushBlocks(now, blocks)
}

// flushBlocks writes the given buffered blocks to the device as coalesced
// extents and removes them from the buffer. It returns the completion time
// of the first extent; the completion of the whole flush is recorded in
// drainDoneAt.
func (b *Buffer) flushBlocks(now units.Time, blocks []int64) units.Time {
	if len(blocks) == 0 {
		return now
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	write := b.inner.Access
	if bg, ok := b.inner.(backgrounder); ok {
		write = bg.Background
	}
	completion := now
	var firstDone units.Time
	runStart := blocks[0]
	runLen := int64(1)
	emit := func() {
		completion = write(device.Request{
			Time: completion,
			Op:   trace.Write,
			File: flushFile,
			Addr: units.Bytes(runStart) * b.blockSize,
			Size: units.Bytes(runLen) * b.blockSize,
		})
		if firstDone == 0 {
			firstDone = completion
		}
	}
	for _, blk := range blocks[1:] {
		if blk == runStart+runLen {
			runLen++
			continue
		}
		emit()
		runStart, runLen = blk, 1
	}
	emit()
	for _, blk := range blocks {
		delete(b.dirty, blk)
	}
	b.flushes++
	b.cFlushes.Inc()
	b.cFlushedBlks.Add(int64(len(blocks)))
	if b.sc.Tracing() {
		b.sc.Emit(obs.Event{T: int64(now), Kind: obs.EvSRAMFlush, Dev: b.evName,
			Size: int64(units.Bytes(len(blocks)) * b.blockSize), Dur: int64(completion - now)})
	}
	if completion > b.drainDoneAt {
		b.drainDoneAt = completion
	}
	return firstDone
}

// drop removes buffered blocks overlapping [addr, addr+size) without
// writing them back (deletion or supersession).
func (b *Buffer) drop(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first, last := b.blockRange(addr, size)
	for blk := first; blk <= last; blk++ {
		delete(b.dirty, blk)
	}
}

// accessTime charges active energy for an SRAM transfer and returns its
// duration.
func (b *Buffer) accessTime(size units.Bytes) units.Time {
	t := b.params.AccessTime(size)
	b.meter.AccrueSlot(energy.SlotActive, b.params.ActiveW, t)
	return t
}

func (b *Buffer) accrueStandby(now units.Time) {
	if now <= b.lastUpdate {
		return
	}
	b.meter.AccrueSlot(energy.SlotStandby, b.params.StandbyWPerMB*b.size.MBytes(), now-b.lastUpdate)
	b.lastUpdate = now
}

func (b *Buffer) blockRange(addr, size units.Bytes) (first, last int64) {
	return int64(addr / b.blockSize), int64((addr + size - 1) / b.blockSize)
}

// Crash implements device.Crasher. The SRAM is battery-backed, so the dirty
// set survives; only the in-flight drain's timing state is discarded (the
// blocks a drain removes from the dirty set have already been applied to the
// wrapped device's model state, so nothing acknowledged is lost). The crash
// propagates to the wrapped device.
func (b *Buffer) Crash(at units.Time) {
	b.accrueStandby(at)
	if b.drainDoneAt > at {
		b.drainDoneAt = at
	}
	if cr, ok := b.inner.(device.Crasher); ok {
		cr.Crash(at)
	}
}

// Recover implements device.Crasher: after the wrapped device recovers, the
// surviving dirty blocks are replayed to it — the battery-backed guarantee
// that makes buffering synchronous writes safe (§5.5). Returns when the
// replay completes; the buffer is empty afterwards.
func (b *Buffer) Recover(at units.Time) units.Time {
	done := at
	if cr, ok := b.inner.(device.Crasher); ok {
		done = cr.Recover(at)
	}
	if len(b.dirty) == 0 {
		return done
	}
	blocks := int64(len(b.dirty))
	b.drain(done)
	if b.drainDoneAt > done {
		done = b.drainDoneAt
	}
	b.inj.RecordReplay(b.evName, blocks, at, done-at)
	if len(b.dirty) != 0 {
		b.inj.Violatef("sram %s: %d dirty blocks remain after recovery replay", b.evName, len(b.dirty))
	}
	return done
}

var (
	_ device.Device  = (*Buffer)(nil)
	_ device.Crasher = (*Buffer)(nil)
)
