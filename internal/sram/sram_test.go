package sram

import (
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// fakeDevice records every request it services and takes a fixed time per
// op; Spinning/Background behavior is controllable.
type fakeDevice struct {
	meter     *energy.Meter
	service   units.Time
	busyUntil units.Time
	requests  []device.Request
	bgCount   int
	spinning  bool
	hasSpin   bool // whether to expose the spinStater interface behavior
}

func newFake(service units.Time) *fakeDevice {
	return &fakeDevice{meter: energy.NewMeter(), service: service, spinning: true}
}

func (f *fakeDevice) Access(req device.Request) units.Time {
	f.requests = append(f.requests, req)
	if req.Op == trace.Delete {
		return req.Time
	}
	start := units.Max(req.Time, f.busyUntil)
	f.busyUntil = start + f.service
	return f.busyUntil
}

func (f *fakeDevice) Idle(units.Time)      {}
func (f *fakeDevice) Finish(units.Time)    {}
func (f *fakeDevice) Meter() *energy.Meter { return f.meter }
func (f *fakeDevice) Name() string         { return "fake" }

// spinFake adds Spinning/Background.
type spinFake struct {
	fakeDevice
}

func (f *spinFake) Spinning(units.Time) bool { return f.spinning }

func (f *spinFake) Background(req device.Request) units.Time {
	f.bgCount++
	return f.Access(req)
}

func newBuffer(t *testing.T, size units.Bytes, inner device.Device) *Buffer {
	t.Helper()
	b, err := New(device.NECSRAM(), size, units.KB, inner)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func wr(at units.Time, addr, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Write, File: 1, Addr: addr, Size: size}
}

func rd(at units.Time, addr, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Read, File: 1, Addr: addr, Size: size}
}

func TestSmallWriteAbsorbed(t *testing.T) {
	inner := newFake(50 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	done := b.Access(wr(0, 0, units.KB))
	if done >= units.Millisecond {
		t.Errorf("buffered write took %v, want SRAM speed", done)
	}
	if len(inner.requests) != 0 {
		t.Errorf("small write reached the device: %v", inner.requests)
	}
	if b.BufferedBytes() != units.KB {
		t.Errorf("buffered = %v", b.BufferedBytes())
	}
}

func TestReadServedFromBuffer(t *testing.T) {
	inner := newFake(50 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	b.Access(wr(0, 0, 2*units.KB))
	done := b.Access(rd(units.Second, 0, 2*units.KB))
	if done-units.Second >= units.Millisecond {
		t.Errorf("buffered read took %v", done-units.Second)
	}
	if len(inner.requests) != 0 {
		t.Error("fully buffered read reached the device")
	}
}

func TestPartialOverlapFlushesBeforeRead(t *testing.T) {
	inner := newFake(10 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	b.Access(wr(0, 0, units.KB))
	// Read covers the buffered block plus one more: the dirty block must be
	// written back before the device read.
	b.Access(rd(units.Second, 0, 2*units.KB))
	if len(inner.requests) != 2 {
		t.Fatalf("requests = %v, want flush write + read", inner.requests)
	}
	if inner.requests[0].Op != trace.Write || inner.requests[1].Op != trace.Read {
		t.Errorf("wrong order: %v", inner.requests)
	}
	if b.BufferedBytes() != 0 {
		t.Error("flushed block still buffered")
	}
}

func TestOversizedWriteBypasses(t *testing.T) {
	inner := newFake(10 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	b.Access(wr(0, 0, units.KB))    // buffered, below high water
	b.Access(wr(0, 0, 33*units.KB)) // oversized: straight through
	if len(inner.requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(inner.requests))
	}
	// The buffered block overlapped the big write, so it was superseded.
	if b.BufferedBytes() != 0 {
		t.Errorf("superseded block still buffered: %v", b.BufferedBytes())
	}
}

func TestOverflowStartsBackgroundDrain(t *testing.T) {
	inner := newFake(10 * units.Millisecond)
	b := newBuffer(t, 4*units.KB, inner) // 4 blocks
	var clock units.Time
	for i := 0; i < 5; i++ { // fifth write overflows
		clock = b.Access(wr(clock, units.Bytes(i)*units.KB, units.KB))
	}
	if b.Flushes() == 0 {
		t.Fatal("no drain on overflow")
	}
	// The overflow write itself did not wait for the device.
	if clock > 10*units.Millisecond {
		t.Errorf("overflow write completed at %v — it blocked on the drain", clock)
	}
	if b.StalledWrites() != 0 {
		t.Errorf("stalled writes = %d, want 0 (single overflow)", b.StalledWrites())
	}
}

func TestDoubleOverflowStalls(t *testing.T) {
	inner := newFake(200 * units.Millisecond) // slow device
	b := newBuffer(t, 2*units.KB, inner)
	var clock units.Time
	// Hammer writes to distinct blocks with no gaps: the second overflow
	// arrives while the first drain is still running and must wait.
	for i := 0; i < 8; i++ {
		clock = b.Access(wr(clock, units.Bytes(i)*units.KB, units.KB))
	}
	if b.StalledWrites() == 0 {
		t.Error("no write stalled despite back-to-back overflows")
	}
	if b.OverflowStall() <= 0 {
		t.Error("no stall time recorded")
	}
}

func TestHighWaterDrainWhenSpinning(t *testing.T) {
	inner := &spinFake{fakeDevice: *newFake(5 * units.Millisecond)}
	inner.spinning = true
	b := newBuffer(t, 8*units.KB, inner)
	var clock units.Time
	for i := 0; i < 3; i++ { // 3 ≥ 25% of 8 blocks
		clock = b.Access(wr(clock+units.Second, units.Bytes(i)*units.KB, units.KB))
	}
	if b.Flushes() == 0 {
		t.Error("no high-water drain while the device was spinning")
	}
	if inner.bgCount == 0 {
		t.Error("drain did not use the background path")
	}
}

func TestSleepingDiskStaysAsleepBelowHighWater(t *testing.T) {
	inner := &spinFake{fakeDevice: *newFake(5 * units.Millisecond)}
	inner.spinning = false
	b := newBuffer(t, 32*units.KB, inner) // high water at 8 blocks
	var clock units.Time
	for i := 0; i < 6; i++ {
		clock = b.Access(wr(clock+units.Second, units.Bytes(i)*units.KB, units.KB))
	}
	if len(inner.requests) != 0 {
		t.Errorf("writes below high water woke a sleeping disk: %v", inner.requests)
	}
	_ = clock
}

func TestReadSpinUpDrainsBuffer(t *testing.T) {
	inner := &spinFake{fakeDevice: *newFake(5 * units.Millisecond)}
	inner.spinning = false
	b := newBuffer(t, 32*units.KB, inner)
	b.Access(wr(0, 0, units.KB))
	// A read of un-buffered data forces the device up; the buffer drains
	// opportunistically afterwards.
	b.Access(rd(units.Second, 100*units.KB, units.KB))
	if b.BufferedBytes() != 0 {
		t.Error("buffer not drained after a spin-up read")
	}
}

func TestDeleteDropsBufferedBlocks(t *testing.T) {
	inner := newFake(5 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	b.Access(wr(0, 0, 2*units.KB))
	b.Access(device.Request{Time: 1, Op: trace.Delete, Addr: 0, Size: 2 * units.KB})
	if b.BufferedBytes() != 0 {
		t.Error("deleted blocks still buffered")
	}
	// The delete itself is forwarded (flash devices need the invalidation).
	if len(inner.requests) != 1 || inner.requests[0].Op != trace.Delete {
		t.Errorf("requests = %v", inner.requests)
	}
}

func TestCoalescedFlush(t *testing.T) {
	inner := newFake(5 * units.Millisecond)
	b := newBuffer(t, 16*units.KB, inner) // high water at 4 blocks
	// Four contiguous blocks: the high-water drain must emit one write.
	var clock units.Time
	for i := 0; i < 4; i++ {
		clock = b.Access(wr(clock, units.Bytes(i)*units.KB, units.KB))
	}
	if len(inner.requests) != 1 {
		t.Fatalf("flush produced %d writes, want 1", len(inner.requests))
	}
	if inner.requests[0].Size != 4*units.KB {
		t.Errorf("flush size = %v, want 4KB", inner.requests[0].Size)
	}
}

func TestStandbyEnergy(t *testing.T) {
	inner := newFake(5 * units.Millisecond)
	b := newBuffer(t, 32*units.KB, inner)
	b.Finish(1000 * units.Second)
	if b.Meter().TotalJ() <= 0 {
		t.Error("no standby energy")
	}
}

func TestConstructionErrors(t *testing.T) {
	inner := newFake(time1)
	if _, err := New(device.NECSRAM(), 100, units.KB, inner); err == nil {
		t.Error("sub-block buffer accepted")
	}
	if _, err := New(device.NECSRAM(), units.KB, 0, inner); err == nil {
		t.Error("zero block size accepted")
	}
}

const time1 = units.Millisecond

func TestName(t *testing.T) {
	b := newBuffer(t, 32*units.KB, newFake(time1))
	if b.Name() != "fake+sram32KB" {
		t.Errorf("Name = %q", b.Name())
	}
	if b.Inner().Name() != "fake" {
		t.Error("Inner broken")
	}
}
