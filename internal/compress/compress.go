// Package compress models the on-the-fly compression layers used in the
// paper's hardware measurements (§3): DoubleSpace on the Caviar CU140,
// Stacker on the SunDisk SDP10, and the compression built into MFFS 2.00 on
// the Intel flash card.
//
// The paper's compressible test data was the first 2 KB of Moby-Dick
// repeated through each file, compressing roughly 2:1; random data does not
// compress. Compression shrinks the bytes that reach the device at the cost
// of a CPU step, and (for DoubleSpace/Stacker) batches small writes.
package compress

import "mobilestorage/internal/units"

// Data categorizes benchmark payloads.
type Data uint8

// Payload kinds used by the micro-benchmarks.
const (
	// Random data does not compress (the "uncompressed" columns of
	// Table 1 for the flash card, where compression is always on).
	Random Data = iota
	// MobyDick is the paper's compressible payload: the first 2 KB of
	// Melville's novel repeated through the file, ≈2:1.
	MobyDick
)

// Model is a compression layer in front of a storage device.
type Model struct {
	// Name labels the product ("doublespace", "stacker", "mffs").
	Name string
	// Ratio is the size multiplier for compressible data (0.5 ≈ 2:1).
	Ratio float64
	// ThroughputKBs is the software (de)compression speed on the
	// OmniBook's 25 MHz 386SXLV; this is the step that halves the flash
	// card's read throughput on compressible data (§3).
	ThroughputKBs float64
	// BatchBytes, when non-zero, is the write-coalescing granularity:
	// DoubleSpace and Stacker buffer small writes and push them to the
	// device in batches, which is why compressed small-file writes beat
	// the device's raw write speed in Table 1.
	BatchBytes units.Bytes
}

// DoubleSpace models MS-DOS 6 DoubleSpace over the CU140.
func DoubleSpace() Model {
	return Model{Name: "doublespace", Ratio: 0.5, ThroughputKBs: 650, BatchBytes: 32 * units.KB}
}

// Stacker models Stac Electronics' Stacker over the SDP10.
func Stacker() Model {
	return Model{Name: "stacker", Ratio: 0.5, ThroughputKBs: 650, BatchBytes: 32 * units.KB}
}

// MFFS models the compression built into Microsoft Flash File System 2.00.
// MFFS compresses always (Table 1 has no uncompressed Intel column) and
// does not batch.
func MFFS() Model {
	return Model{Name: "mffs", Ratio: 0.5, ThroughputKBs: 650}
}

// CompressedSize returns the bytes that reach the device for a payload.
func (m Model) CompressedSize(size units.Bytes, d Data) units.Bytes {
	if d == Random || m.Ratio <= 0 || m.Ratio >= 1 {
		return size
	}
	out := units.Bytes(float64(size) * m.Ratio)
	if out < 1 {
		out = 1
	}
	return out
}

// CPUTime returns the software compression or decompression time for a
// payload. Random data is still scanned by the compressor but at a higher
// effective rate (it bails to stored blocks quickly); the paper observed
// flash-card reads of uncompressible data at about twice the speed of
// compressible data, i.e. the decompression step dominates only for
// compressible payloads.
func (m Model) CPUTime(size units.Bytes, d Data) units.Time {
	if m.ThroughputKBs <= 0 {
		return 0
	}
	rate := m.ThroughputKBs
	if d == Random {
		rate *= 4 // stored-block fast path
	}
	return units.TransferTime(size, rate)
}
