package compress

import (
	"testing"

	"mobilestorage/internal/units"
)

func TestCompressedSize(t *testing.T) {
	m := DoubleSpace()
	if got := m.CompressedSize(4*units.KB, MobyDick); got != 2*units.KB {
		t.Errorf("compressible 4KB → %v, want 2KB", got)
	}
	if got := m.CompressedSize(4*units.KB, Random); got != 4*units.KB {
		t.Errorf("random 4KB → %v, want 4KB", got)
	}
	// Tiny payloads never compress to zero.
	if got := m.CompressedSize(1, MobyDick); got < 1 {
		t.Errorf("1B → %v", got)
	}
}

func TestNoCompressionModel(t *testing.T) {
	m := Model{Name: "none", Ratio: 1}
	if got := m.CompressedSize(4*units.KB, MobyDick); got != 4*units.KB {
		t.Errorf("ratio-1 model compressed: %v", got)
	}
	if got := m.CPUTime(4*units.KB, MobyDick); got != 0 {
		t.Errorf("zero-throughput model charged CPU: %v", got)
	}
}

func TestCPUTime(t *testing.T) {
	m := MFFS()
	compressible := m.CPUTime(4*units.KB, MobyDick)
	random := m.CPUTime(4*units.KB, Random)
	if compressible <= 0 {
		t.Fatal("no CPU time for compressible data")
	}
	// §3: reads of uncompressible data run about twice as fast because the
	// decompression step is (mostly) avoided; the model gives 4×.
	if random >= compressible {
		t.Errorf("random CPU %v not below compressible %v", random, compressible)
	}
}

func TestProducts(t *testing.T) {
	for _, m := range []Model{DoubleSpace(), Stacker(), MFFS()} {
		if m.Name == "" || m.Ratio <= 0 || m.Ratio >= 1 {
			t.Errorf("product %+v has bad parameters", m)
		}
	}
	if MFFS().BatchBytes != 0 {
		t.Error("MFFS must not batch")
	}
	if DoubleSpace().BatchBytes == 0 || Stacker().BatchBytes == 0 {
		t.Error("DoubleSpace/Stacker must batch")
	}
}
