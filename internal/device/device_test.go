package device

import (
	"testing"

	"mobilestorage/internal/units"
)

func TestCatalogValidates(t *testing.T) {
	disks := []DiskParams{CU140Datasheet(), CU140Measured(), KittyhawkDatasheet()}
	for _, p := range disks {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	fdisks := []FlashDiskParams{SDP10Measured(), SDP10Datasheet(), SDP5Datasheet()}
	for _, p := range fdisks {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	cards := []FlashCardParams{IntelSeries2Datasheet(), IntelSeries2Measured(), IntelSeries2PlusDatasheet()}
	for _, p := range cards {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCatalogPaperValues(t *testing.T) {
	// Spot-check values transcribed from Table 2.
	cu := CU140Datasheet()
	if cu.AccessLatency != units.FromMilliseconds(25.7) {
		t.Errorf("cu140 latency %v", cu.AccessLatency)
	}
	if cu.TransferKBs != 2125 || cu.ActiveW != 1.75 || cu.IdleW != 0.7 || cu.SpinUpW != 3.0 {
		t.Errorf("cu140 datasheet drifted: %+v", cu)
	}
	if cu.SpinUpTime != 1000*units.Millisecond {
		t.Errorf("cu140 spin-up %v", cu.SpinUpTime)
	}

	ic := IntelSeries2Datasheet()
	if ic.ReadKBs != 9765 || ic.WriteKBs != 214 {
		t.Errorf("intel bandwidths drifted: %+v", ic)
	}
	if ic.EraseTime != 1600*units.Millisecond || ic.SegmentSize != 128*units.KB {
		t.Errorf("intel erase drifted: %+v", ic)
	}
	if ic.EnduranceCycles != 100_000 {
		t.Errorf("intel endurance %d", ic.EnduranceCycles)
	}

	sd := SDP5Datasheet()
	if sd.WriteCoupledKBs != 75 || sd.EraseKBs != 150 || sd.WritePreErasedKBs != 400 {
		t.Errorf("sdp5 §5.3 bandwidths drifted: %+v", sd)
	}
	if !sd.SupportsAsyncErase() {
		t.Error("sdp5 must support async erase")
	}
	if SDP10Datasheet().SupportsAsyncErase() {
		t.Error("sdp10 must not support async erase")
	}

	s2p := IntelSeries2PlusDatasheet()
	if s2p.EraseTime != 300*units.Millisecond || s2p.EnduranceCycles != 1_000_000 {
		t.Errorf("series 2+ drifted: %+v", s2p)
	}
}

func TestMeasuredSlowerThanDatasheet(t *testing.T) {
	// The DOS software path only ever makes devices slower.
	if CU140Measured().TransferKBs >= CU140Datasheet().TransferKBs {
		t.Error("measured cu140 not slower")
	}
	if IntelSeries2Measured().WriteKBs >= IntelSeries2Datasheet().WriteKBs {
		t.Error("measured intel writes not slower")
	}
	if IntelSeries2Measured().ReadKBs >= IntelSeries2Datasheet().ReadKBs {
		t.Error("measured intel reads not slower")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	d := CU140Datasheet()
	d.TransferKBs = 0
	if d.Validate() == nil {
		t.Error("zero transfer rate accepted")
	}
	d = CU140Datasheet()
	d.IdleW = -1
	if d.Validate() == nil {
		t.Error("negative power accepted")
	}
	f := SDP5Datasheet()
	f.SectorSize = 0
	if f.Validate() == nil {
		t.Error("zero sector accepted")
	}
	f = SDP5Datasheet()
	f.EraseKBs = -1
	if f.Validate() == nil {
		t.Error("negative erase bandwidth accepted")
	}
	c := IntelSeries2Datasheet()
	c.EraseTime = 0
	if c.Validate() == nil {
		t.Error("zero erase time accepted")
	}
	c = IntelSeries2Datasheet()
	c.EraseW = -0.1
	if c.Validate() == nil {
		t.Error("negative erase power accepted")
	}
}

func TestMemoryAccessTime(t *testing.T) {
	m := NECDRAM()
	// 50 MB/s → 1 KB in ~20 µs.
	got := m.AccessTime(units.KB)
	if got < 15 || got > 25 {
		t.Errorf("DRAM 1KB access = %v", got)
	}
	s := NECSRAM()
	if s.AccessTime(units.KB) <= 0 {
		t.Error("SRAM access time not positive")
	}
}

func TestCatalogTable(t *testing.T) {
	entries := Catalog()
	if len(entries) != 8 {
		t.Fatalf("catalog has %d rows, want 8 (Table 2)", len(entries))
	}
	// The erase row's throughput is segment/size over erase time ≈ 80 KB/s.
	last := entries[len(entries)-1]
	if last.Operation != "erase" {
		t.Fatalf("last row is %q", last.Operation)
	}
	if last.Throughput < 70 || last.Throughput > 90 {
		t.Errorf("erase bandwidth %g KB/s, want ≈80", last.Throughput)
	}
}
