// Package device defines the storage-device abstraction the simulator core
// drives, plus the parameter catalog for every hardware product the paper
// measures or simulates (Table 2 and §3/§4.2).
package device

import (
	"mobilestorage/internal/energy"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Request is one device-level operation, produced by preprocessing a
// file-level trace record through a trace.Layout.
type Request struct {
	// Time is the arrival instant.
	Time units.Time
	// Op is Read, Write, or Delete.
	Op trace.Op
	// File is the originating file ID; device models use it for the paper's
	// "repeated accesses to the same file never seek" assumption (§4.2).
	File uint32
	// Addr is the device byte address.
	Addr units.Bytes
	// Size is the transfer size in bytes.
	Size units.Bytes
}

// Device is a non-volatile storage device model.
//
// Devices are single-server queues over simulated time: Access returns the
// completion instant of the request, queueing it behind any in-progress
// work (start = max(arrival, busy-until)). Response time is
// completion − arrival.
//
// The core calls Idle before each request and Finish once at the end so
// devices can integrate idle-period energy and perform background work
// (disk spin-down, flash cleaning, asynchronous erasure). Background work is
// suspended while host I/O is in progress, per §4.2.
type Device interface {
	// Access performs a read or write and returns its completion time.
	// Delete requests invalidate the extent and complete instantly (they
	// are metadata operations in the traced file systems).
	Access(req Request) units.Time
	// Idle advances the device's background activity and energy accounting
	// to the given instant. now never moves backwards.
	Idle(now units.Time)
	// Finish finalizes energy accounting at the end of the simulation.
	Finish(now units.Time)
	// Meter exposes the device's energy accounting.
	Meter() *energy.Meter
	// Name identifies the modeled product.
	Name() string
}

// Crasher is implemented by devices that model power failure. Crash drops
// volatile state (queued work, in-flight cleaning, controller progress) at
// the given instant; non-volatile media and battery-backed buffers survive.
// Recover performs the post-restart repair pass — consistency scans,
// replaying surviving buffered writes — charging its time and energy, and
// returns the instant recovery completes. The core calls Idle(at), then
// Crash(at), then Recover(at) before resuming the trace.
type Crasher interface {
	Crash(at units.Time)
	Recover(at units.Time) units.Time
}

// WearReporter is implemented by devices with erase-cycle endurance limits
// (both flash models) so experiments can report §5.2's endurance numbers.
type WearReporter interface {
	// EraseCounts returns the number of erasures per erase unit.
	EraseCounts() []int64
	// EnduranceCycles is the manufacturer's per-unit erase limit.
	EnduranceCycles() int64
}
