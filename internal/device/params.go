package device

import (
	"fmt"

	"mobilestorage/internal/units"
)

// ParamSource records whether a parameter set came from the paper's hardware
// measurements (§3, Table 1) or from manufacturer datasheets (Table 2).
// Tables 4(a)–(c) report both variants side by side.
type ParamSource string

// Parameter provenance values.
const (
	Measured  ParamSource = "measured"
	Datasheet ParamSource = "datasheet"
)

// DiskParams describes a magnetic hard disk (WD Caviar Ultralite CU140,
// HP Kittyhawk).
type DiskParams struct {
	Name   string
	Source ParamSource

	// AccessLatency is the overhead of a random operation excluding the
	// transfer itself: controller overhead, seeking, rotational latency
	// (Table 2's "Latency" column).
	AccessLatency units.Time
	// TransferKBs is the sustained media transfer rate.
	TransferKBs float64
	// SpinUpTime is the time to spin up from standby.
	SpinUpTime units.Time

	// Power by state, watts.
	ActiveW float64 // reading or writing
	IdleW   float64 // spinning, no transfer
	SpinUpW float64 // during spin-up
	SleepW  float64 // spun down

	// FirmwareSpinDown, when > 0, is a drive-internal spin-down timeout
	// that applies regardless of the host policy (the Kittyhawk manages
	// its own aggressive power state transitions). Zero means the host
	// spin-down policy alone governs.
	FirmwareSpinDown units.Time

	// Calibrated flags values the paper does not publish and which were
	// chosen to preserve the paper's orderings (see DESIGN.md §2).
	Calibrated bool
}

// FlashDiskParams describes a flash disk emulator (SunDisk SDP series):
// flash behind a 512-byte-sector disk interface, erasing one sector at a
// time, normally coupled with the write.
type FlashDiskParams struct {
	Name   string
	Source ParamSource

	// AccessLatency is the per-operation controller overhead.
	AccessLatency units.Time
	// ReadKBs is the read bandwidth.
	ReadKBs float64
	// WriteCoupledKBs is the effective bandwidth of coupled erase+write
	// (75 KB/s for the SDP series, §2).
	WriteCoupledKBs float64
	// EraseKBs is the standalone erasure bandwidth (150 KB/s on the SDP5A,
	// §5.3). Zero means the device cannot erase asynchronously.
	EraseKBs float64
	// WritePreErasedKBs is the write bandwidth into pre-erased sectors
	// (400 KB/s on the SDP5A, §5.3).
	WritePreErasedKBs float64
	// SectorSize is the erase/transfer unit (512 bytes).
	SectorSize units.Bytes

	ActiveW float64 // during reads
	// WriteW is the draw during erase and write operations: the erase
	// charge pumps draw noticeably more than the read path.
	WriteW   float64
	StandbyW float64 // idle

	// EnduranceCycles is the per-sector erase limit (100,000 for the
	// devices the paper studied).
	EnduranceCycles int64

	Calibrated bool
}

// SupportsAsyncErase reports whether the part can decouple erasure from
// writes (SDP5A).
func (p FlashDiskParams) SupportsAsyncErase() bool {
	return p.EraseKBs > 0 && p.WritePreErasedKBs > 0
}

// FlashCardParams describes a byte-addressable flash memory card (Intel
// Series 2 / Series 2+): reads at memory speed, out-of-place writes, large
// fixed-time erase segments that require cleaning.
type FlashCardParams struct {
	Name   string
	Source ParamSource

	// ReadKBs and WriteKBs are transfer bandwidths. Reads avoid the disk
	// interface entirely, hence the near-memory read speed.
	ReadKBs  float64
	WriteKBs float64
	// CopyKBs is the write bandwidth for internal cleaning copies. Zero
	// means WriteKBs. The measured WriteKBs includes MFFS host-path
	// software overhead that internal copies do not pay.
	CopyKBs float64
	// EraseTime is the fixed cost of erasing one segment regardless of the
	// amount of data (1.6 s for Series 2, 300 ms for Series 2+).
	EraseTime units.Time
	// SegmentSize is the erase unit (the paper simulates 128 KB).
	SegmentSize units.Bytes

	ActiveW float64 // during read or write transfers
	// EraseW is the effective average draw across the fixed erase time.
	// The erase is a pulse train with verify phases, so its average draw
	// sits well below the peak transfer draw.
	EraseW   float64
	StandbyW float64 // idle

	// EnduranceCycles is the per-segment erase limit (100,000 for Series 2,
	// 1,000,000 for Series 2+).
	EnduranceCycles int64

	Calibrated bool
}

// MemoryParams describes a volatile or battery-backed memory used as a
// cache or write buffer (NEC DRAM, NEC SRAM).
type MemoryParams struct {
	Name   string
	Source ParamSource

	// TransferKBs is the effective copy bandwidth for cache fills/hits.
	TransferKBs float64
	// ActiveW is drawn while transferring.
	ActiveW float64
	// StandbyWPerMB is the retention power per megabyte (DRAM refresh /
	// SRAM data hold); this is what makes extra DRAM cost energy even when
	// idle (§5.4).
	StandbyWPerMB float64

	Calibrated bool
}

// AccessTime returns the time to move size bytes through the memory.
func (p MemoryParams) AccessTime(size units.Bytes) units.Time {
	return units.TransferTime(size, p.TransferKBs)
}

// Validate checks a DiskParams for physical plausibility.
func (p DiskParams) Validate() error {
	if p.TransferKBs <= 0 || p.SpinUpTime < 0 || p.AccessLatency < 0 {
		return fmt.Errorf("device %s: non-physical performance parameters", p.Name)
	}
	if p.ActiveW < 0 || p.IdleW < 0 || p.SpinUpW < 0 || p.SleepW < 0 {
		return fmt.Errorf("device %s: negative power", p.Name)
	}
	return nil
}

// Validate checks a FlashDiskParams.
func (p FlashDiskParams) Validate() error {
	if p.ReadKBs <= 0 || p.WriteCoupledKBs <= 0 || p.SectorSize <= 0 {
		return fmt.Errorf("device %s: non-physical performance parameters", p.Name)
	}
	if p.EraseKBs < 0 || p.WritePreErasedKBs < 0 {
		return fmt.Errorf("device %s: negative bandwidth", p.Name)
	}
	if p.ActiveW < 0 || p.StandbyW < 0 {
		return fmt.Errorf("device %s: negative power", p.Name)
	}
	return nil
}

// Validate checks a FlashCardParams.
func (p FlashCardParams) Validate() error {
	if p.ReadKBs <= 0 || p.WriteKBs <= 0 || p.SegmentSize <= 0 || p.EraseTime <= 0 {
		return fmt.Errorf("device %s: non-physical performance parameters", p.Name)
	}
	if p.ActiveW < 0 || p.EraseW < 0 || p.StandbyW < 0 {
		return fmt.Errorf("device %s: negative power", p.Name)
	}
	return nil
}
