package device

import "mobilestorage/internal/units"

// This file is the parameter catalog: every product the paper measures or
// simulates, in both "measured" (§3 micro-benchmarks, Table 1) and
// "datasheet" (Table 2) variants where the paper distinguishes them.
//
// Values the paper publishes are transcribed directly. Values it does not
// publish (Kittyhawk power states, memory standby power, flash standby
// power) are calibrated to preserve the paper's orderings and are flagged
// Calibrated; DESIGN.md §2 documents the method.

// CU140Datasheet is the Western Digital Caviar Ultralite CU140 40 MB
// PCMCIA Type III hard disk, per its datasheet (Table 2): 25.7 ms random
// access, 2125 KB/s media rate, 1 s spin-up; 1.75 W read/write, 0.7 W idle,
// 3.0 W spin-up.
func CU140Datasheet() DiskParams {
	return DiskParams{
		Name:          "cu140",
		Source:        Datasheet,
		AccessLatency: units.FromMilliseconds(25.7),
		TransferKBs:   2125,
		SpinUpTime:    1000 * units.Millisecond,
		ActiveW:       1.75,
		IdleW:         0.7,
		SpinUpW:       3.0,
		SleepW:        0.03, // not published; small standby draw (Calibrated)
		Calibrated:    true,
	}
}

// CU140Measured is the CU140 as measured on the OmniBook under DOS
// (Table 1): the same mechanism, but sustained throughput limited to the
// measured 543 KB/s by the DOS file-system path.
func CU140Measured() DiskParams {
	p := CU140Datasheet()
	p.Source = Measured
	p.TransferKBs = 543
	return p
}

// KittyhawkDatasheet is the Hewlett-Packard Kittyhawk C3013A 20 MB
// 1.3-inch hard disk (§4.2, "kh"). The paper cites its technical reference
// manual but publishes no numbers; these values are calibrated to preserve
// the paper's Table 4 orderings: the Kittyhawk's firmware spins it down
// aggressively, so it pays more spin-ups (worse mean/σ response and more
// energy than the CU140 on bursty traces) despite being a smaller drive.
func KittyhawkDatasheet() DiskParams {
	return DiskParams{
		Name:             "kh",
		Source:           Datasheet,
		AccessLatency:    units.FromMilliseconds(23.7),
		TransferKBs:      900,
		SpinUpTime:       1100 * units.Millisecond,
		ActiveW:          2.2,
		IdleW:            0.70,
		SpinUpW:          3.5,
		SleepW:           0.040,
		FirmwareSpinDown: 2 * units.Second,
		Calibrated:       true,
	}
}

// SDP10Measured is the SunDisk SDP10 10 MB 12 V PCMCIA flash disk as
// measured on the OmniBook (Table 1): 1.5 ms access overhead, ~410 KB/s
// reads, ~50 KB/s coupled erase+write.
func SDP10Measured() FlashDiskParams {
	return FlashDiskParams{
		Name:            "sdp10",
		Source:          Measured,
		AccessLatency:   units.FromMilliseconds(1.5),
		ReadKBs:         410,
		WriteCoupledKBs: 50,
		SectorSize:      512 * units.B,
		ActiveW:         0.36,
		// Erase+write draws more than the 0.36 W read path: the on-card
		// erase charge pump runs for most of each coupled cycle
		// (Calibrated).
		WriteW:          0.52,
		StandbyW:        0.010, // not published (Calibrated)
		EnduranceCycles: 100_000,
		Calibrated:      true,
	}
}

// SDP10Datasheet is the SDP10 per its OEM manual (Table 2): 1.5 ms access,
// 600 KB/s reads, 50 KB/s writes, 0.36 W.
func SDP10Datasheet() FlashDiskParams {
	p := SDP10Measured()
	p.Source = Datasheet
	p.ReadKBs = 600
	return p
}

// SDP5Datasheet is the SunDisk SDP5/SDP5A 5 V flash disk per SunDisk's 1994
// figures (§4.2, §5.3): erasure coupled with writes at 75 KB/s effective;
// standalone erasure at 150 KB/s; writes into pre-erased sectors at
// 400 KB/s. Reads are modestly faster than the SDP10.
func SDP5Datasheet() FlashDiskParams {
	return FlashDiskParams{
		Name:              "sdp5",
		Source:            Datasheet,
		AccessLatency:     units.FromMilliseconds(1.0),
		ReadKBs:           800,
		WriteCoupledKBs:   75,
		EraseKBs:          150,
		WritePreErasedKBs: 400,
		SectorSize:        512 * units.B,
		ActiveW:           0.36,
		WriteW:            0.52,
		StandbyW:          0.010,
		EnduranceCycles:   100_000,
		Calibrated:        true, // read bandwidth and standby power
	}
}

// IntelSeries2Datasheet is the Intel Series 2 flash memory card per its
// datasheet (Table 2): reads at memory speed (9765 KB/s), writes at
// 214 KB/s after erasure, and a fixed 1.6 s erase of a 64–128 KB segment.
// The paper's simulations use 128 KB segments (Figure 2 caption).
func IntelSeries2Datasheet() FlashCardParams {
	return FlashCardParams{
		Name:        "intel",
		Source:      Datasheet,
		ReadKBs:     9765,
		WriteKBs:    214,
		EraseTime:   1600 * units.Millisecond,
		SegmentSize: 128 * units.KB,
		ActiveW:     0.47,
		// Table 2's 0.47 W is the peak draw; the 1.6 s erase is a pulse
		// train with verify phases, so the average draw over the whole
		// erase is far lower (Calibrated).
		EraseW:          0.17,
		StandbyW:        0.0015, // not published (Calibrated)
		EnduranceCycles: 100_000,
		Calibrated:      true,
	}
}

// IntelSeries2Measured is the Intel card as measured on the OmniBook under
// MFFS 2.00 (Table 1): reads at 645 KB/s (software path + decompression),
// writes at ~35 KB/s.
func IntelSeries2Measured() FlashCardParams {
	p := IntelSeries2Datasheet()
	p.Source = Measured
	p.ReadKBs = 645
	p.WriteKBs = 35
	// Cleaning copies run inside the flash file system at raw card speed;
	// the 35 KB/s includes DOS + MFFS host-path overhead.
	p.CopyKBs = 214
	return p
}

// IntelSeries2PlusDatasheet is the newer 16-Mbit Intel Series 2+ card (§2,
// §7): 300 ms block erase and one million guaranteed erasures per block.
// Used by the ablation experiments; not part of the paper's main tables.
func IntelSeries2PlusDatasheet() FlashCardParams {
	p := IntelSeries2Datasheet()
	p.Name = "intel2+"
	p.EraseTime = 300 * units.Millisecond
	p.EnduranceCycles = 1_000_000
	return p
}

// NECDRAM is the NEC µPD4216160 16-Mbit DRAM (§4.2) used for the buffer
// cache. The datasheet publishes timing; the standby (refresh) power per MB
// is calibrated so that Figure 4's "adding DRAM costs energy without
// benefit in front of a flash card" result holds at the paper's magnitude.
func NECDRAM() MemoryParams {
	return MemoryParams{
		Name:          "nec-dram",
		Source:        Datasheet,
		TransferKBs:   50_000,
		ActiveW:       0.30,
		StandbyWPerMB: 0.0125,
		Calibrated:    true,
	}
}

// NECSRAM is the NEC µPD43256B 32K×8 55 ns SRAM (§5.5) used as the
// battery-backed write buffer.
func NECSRAM() MemoryParams {
	return MemoryParams{
		Name:          "nec-sram",
		Source:        Datasheet,
		TransferKBs:   17_700,
		ActiveW:       0.25,
		StandbyWPerMB: 0.005,
		Calibrated:    true,
	}
}

// CatalogEntry is one row of the device catalog for Table 2 rendering.
type CatalogEntry struct {
	Device     string
	Operation  string
	Latency    units.Time
	Throughput float64 // KB/s; 0 means not applicable
	PowerW     float64
	Calibrated bool
}

// Catalog returns the manufacturer-specification rows corresponding to the
// paper's Table 2.
func Catalog() []CatalogEntry {
	cu := CU140Datasheet()
	sd := SDP10Datasheet()
	ic := IntelSeries2Datasheet()
	return []CatalogEntry{
		{Device: cu.Name, Operation: "read/write", Latency: cu.AccessLatency, Throughput: cu.TransferKBs, PowerW: cu.ActiveW},
		{Device: cu.Name, Operation: "idle", PowerW: cu.IdleW},
		{Device: cu.Name, Operation: "spin up", Latency: cu.SpinUpTime, PowerW: cu.SpinUpW},
		{Device: sd.Name, Operation: "read", Latency: sd.AccessLatency, Throughput: sd.ReadKBs, PowerW: sd.ActiveW},
		{Device: sd.Name, Operation: "write", Latency: sd.AccessLatency, Throughput: sd.WriteCoupledKBs, PowerW: sd.ActiveW},
		{Device: ic.Name, Operation: "read", Throughput: ic.ReadKBs, PowerW: ic.ActiveW},
		{Device: ic.Name, Operation: "write", Throughput: ic.WriteKBs, PowerW: ic.ActiveW},
		{Device: ic.Name, Operation: "erase", Latency: ic.EraseTime,
			Throughput: units.BandwidthKBs(ic.SegmentSize, ic.EraseTime), PowerW: ic.ActiveW},
	}
}
