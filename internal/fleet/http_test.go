package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"mobilestorage/internal/obs"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(obs.NewRegistry())
	mux := http.NewServeMux()
	svc.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Errorf("Location %q for job %q", loc, st.ID)
	}
	return st
}

func pollDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Finished {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestJobAPIGridLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	st := postJob(t, ts, `{
		"name": "grid",
		"devices": ["cu140", "intel"],
		"utilizations": [0.7, 0.9],
		"synth_ops": 200,
		"replicas": 2,
		"workers": 4
	}`)
	if st.Total != 8 {
		t.Fatalf("total %d, want 8 (2 devices × 2 utilizations × 2 replicas)", st.Total)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.Report == nil || final.Report.Energy.TotalJ <= 0 {
		t.Fatalf("final report missing aggregates: %+v", final.Report)
	}

	// The list endpoint includes the job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []Status
	err = json.NewDecoder(resp.Body).Decode(&all)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("GET /jobs: %+v", all)
	}
}

func TestJobAPIRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t)
	for _, c := range []struct {
		name, body string
		code       int
	}{
		{"malformed JSON", `{"devices": [`, http.StatusBadRequest},
		{"unknown field", `{"devicez": ["cu140"]}`, http.StatusBadRequest},
		{"unknown device", `{"devices": ["floppy"]}`, http.StatusBadRequest},
		{"bad utilization", `{"utilizations": [2.0]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: got %s, want %d", c.name, resp.Status, c.code)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s", resp.Status)
	}
}

func TestJobPlotEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	st := postJob(t, ts, `{"synth_ops": 300, "sample_every_s": 1}`)
	pollDone(t, ts, st.ID)

	for _, kind := range []string{"timeline", "latency", "wear", "energy", "cleaning", "faults"} {
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/plot/" + kind)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 512)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("plot %s: %s (%s)", kind, resp.Status, body[:n])
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Errorf("plot %s: content type %q", kind, ct)
		}
		if !strings.Contains(string(body[:n]), "<svg") {
			t.Errorf("plot %s: no SVG in body", kind)
		}
	}

	// Unknown kinds 404 with a body naming the valid ones.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/plot/pie")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown kind: %s", resp.Status)
	}
	for _, kind := range []string{"timeline", "latency", "energy"} {
		if !strings.Contains(string(body[:n]), kind) {
			t.Errorf("404 body does not list %q: %s", kind, body[:n])
		}
	}
}

// An SSE client sees ordered frames ending in a terminal "done" frame —
// satellite 3's wire-level check, over a real connection.
func TestSSEClientOrderingAndDone(t *testing.T) {
	_, ts := newTestServer(t)
	st := postJob(t, ts, `{"devices": ["cu140", "sdp10"], "synth_ops": 300, "replicas": 3, "workers": 2}`)

	resp, err := http.Get(ts.URL + "/events/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type frame struct {
		id    int
		event string
		data  string
	}
	var frames []frame
	cur := frame{id: -1}
	sawRetry := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
			}
			if cur.event == "done" {
				goto scanned
			}
			cur = frame{id: -1}
		case strings.HasPrefix(line, "retry: "):
			sawRetry = true
		case strings.HasPrefix(line, "id: "):
			cur.id, err = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
scanned:
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawRetry {
		t.Error("no retry: prelude")
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	for i, f := range frames {
		if f.id < 0 {
			t.Errorf("frame %d has no id: %+v", i, f)
		}
		if i > 0 && f.id <= frames[i-1].id {
			t.Errorf("frame IDs not increasing: %d then %d", frames[i-1].id, f.id)
		}
		if !json.Valid([]byte(f.data)) {
			t.Errorf("frame %d data is not JSON: %q", i, f.data)
		}
	}
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("terminal frame event %q, want done", last.event)
	}
	var final Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Finished || final.Done != 6 {
		t.Errorf("terminal status: %+v", final)
	}
}

func TestSubmitDuringDrainReturns503(t *testing.T) {
	svc, ts := newTestServer(t)
	// Drain an idle service, then POST.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST during drain: %s, want 503", resp.Status)
	}
}

func TestSubmitBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	big := fmt.Sprintf(`{"name": %q}`, strings.Repeat("x", maxSpecBytes))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized spec: %s, want 400", resp.Status)
	}
}
