package fleet

import (
	"sort"

	"mobilestorage/internal/core"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/plot"
	"mobilestorage/internal/stats"
)

// Aggregator folds per-run results into fleet-level aggregates in constant
// memory: distributions (log-bucketed histograms), totals, and Welford
// summaries — never per-run lists. It is not concurrency-safe; the
// scheduler's merger goroutine owns it and feeds results in strict run-index
// order, which makes the floating-point sums — and therefore the marshaled
// report — byte-identical for any worker count.
type Aggregator struct {
	figs *obsreport.FigureSet // merged event-level figures

	readHist  *obsreport.Hist // response-time distributions across all runs (ms)
	writeHist *obsreport.Hist
	read      stats.Summary
	write     stats.Summary

	energyJ      float64
	energyByComp map[string]float64
	energyPerRun *obsreport.Hist // per-run total energy distribution (J)
	energyRuns   stats.Summary

	spinUps, spinDowns               int64
	erases, copiedBlocks, hostBlocks int64
	writeStalls                      int64
	cleaningUs, hostUs               int64
	cacheHits, cacheMisses           int64
	sramFlushes, sramStalled         int64
	measuredOps                      int64
	endTimeUs                        int64 // max simulated end time across runs
	runs, failed                     int
	faults                           FaultAgg
	sawFaults                        bool
}

// energyBounds spans per-run totals from millijoules to a megajoule — the
// same five-per-decade layout as the latency buckets.
func energyBounds() []float64 { return obs.LogBuckets(1e-3, 1e6) }

// NewAggregator returns an empty fleet aggregator. The latency histograms
// use the core result layout (stats.NewLatencyHistogram) so per-run
// histograms merge in without rebucketing.
func NewAggregator() *Aggregator {
	return &Aggregator{
		figs:         obsreport.NewFigureSet(),
		readHist:     obsreport.FromStats(stats.NewLatencyHistogram()),
		writeHist:    obsreport.FromStats(stats.NewLatencyHistogram()),
		energyByComp: map[string]float64{},
		energyPerRun: obsreport.NewHist(energyBounds()),
	}
}

// AddFailure records a run that errored; its partial state contributes
// nothing.
func (a *Aggregator) AddFailure() { a.runs++; a.failed++ }

// Add folds one completed run in. figs may be nil (the run was executed
// without a tracer); res must not be nil. Callers must add runs in run-index
// order for byte-reproducible reports.
func (a *Aggregator) Add(res *core.Result, figs *obsreport.FigureSet) {
	a.runs++
	a.figs.Merge(figs)

	if res.ReadHist != nil {
		a.readHist.Merge(obsreport.FromStats(res.ReadHist))
	}
	if res.WriteHist != nil {
		a.writeHist.Merge(obsreport.FromStats(res.WriteHist))
	}
	a.read.Merge(res.Read)
	a.write.Merge(res.Write)

	a.energyJ += res.EnergyJ
	for _, comp := range sortedKeys(res.EnergyByComponent) {
		a.energyByComp[comp] += res.EnergyByComponent[comp]
	}
	a.energyPerRun.Add(res.EnergyJ)
	a.energyRuns.Add(res.EnergyJ)

	a.spinUps += res.SpinUps
	a.spinDowns += res.SpinDowns
	a.erases += res.Erases
	a.copiedBlocks += res.CopiedBlocks
	a.hostBlocks += res.HostBlocks
	a.writeStalls += res.WriteStalls
	a.cleaningUs += int64(res.CleaningTime)
	a.hostUs += int64(res.HostTime)
	a.cacheHits += res.CacheHits
	a.cacheMisses += res.CacheMisses
	a.sramFlushes += res.SRAMFlushes
	a.sramStalled += res.SRAMStalledWrites
	a.measuredOps += int64(res.MeasuredOps)
	if int64(res.EndTime) > a.endTimeUs {
		a.endTimeUs = int64(res.EndTime)
	}
	if f := res.Faults; f != nil {
		a.sawFaults = true
		a.faults.ReadFaults += f.ReadFaults
		a.faults.WriteFaults += f.WriteFaults
		a.faults.EraseFaults += f.EraseFaults
		a.faults.Retries += f.Retries
		a.faults.Exhausted += f.Exhausted
		a.faults.BackoffUs += int64(f.BackoffTime)
		a.faults.Remaps += f.Remaps
		a.faults.SparesExhausted += f.SparesExhausted
		a.faults.Reclaims += f.Reclaims
		a.faults.PowerFailures += f.PowerFailures
		a.faults.ReplayedBlocks += f.ReplayedBlocks
		a.faults.LostWrites += f.LostWrites
		a.faults.Violations += int64(len(f.Violations))
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LatAgg summarizes one operation class's response times across the fleet.
type LatAgg struct {
	N        int64   `json:"n"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
	StdDevMs float64 `json:"stddev_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// ComponentEnergy is one component's fleet-total energy.
type ComponentEnergy struct {
	Component string  `json:"component"`
	Joules    float64 `json:"joules"`
}

// EnergyAgg summarizes energy across the fleet: the grand total, the
// per-run distribution, and the per-component breakdown (sorted by name).
type EnergyAgg struct {
	TotalJ      float64           `json:"total_j"`
	MeanPerRunJ float64           `json:"mean_per_run_j"`
	MaxPerRunJ  float64           `json:"max_per_run_j"`
	P50PerRunJ  float64           `json:"p50_per_run_j"`
	P90PerRunJ  float64           `json:"p90_per_run_j"`
	ByComponent []ComponentEnergy `json:"by_component,omitempty"`
}

// SpinAgg totals disk spin activity.
type SpinAgg struct {
	Ups   int64 `json:"ups"`
	Downs int64 `json:"downs"`
}

// FlashAgg totals flash activity; WriteAmp is (host+copied)/host.
type FlashAgg struct {
	Erases       int64   `json:"erases"`
	CopiedBlocks int64   `json:"copied_blocks"`
	HostBlocks   int64   `json:"host_blocks"`
	WriteStalls  int64   `json:"write_stalls"`
	WriteAmp     float64 `json:"write_amp"`
	CleaningUs   int64   `json:"cleaning_us"`
	HostUs       int64   `json:"host_us"`
}

// CacheAgg totals DRAM cache and SRAM buffer activity.
type CacheAgg struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	SRAMFlushes int64   `json:"sram_flushes"`
	SRAMStalled int64   `json:"sram_stalled"`
}

// FaultAgg totals injected-fault activity across the fleet.
type FaultAgg struct {
	ReadFaults      int64 `json:"read_faults"`
	WriteFaults     int64 `json:"write_faults"`
	EraseFaults     int64 `json:"erase_faults"`
	Retries         int64 `json:"retries"`
	Exhausted       int64 `json:"exhausted"`
	BackoffUs       int64 `json:"backoff_us"`
	Remaps          int64 `json:"remaps"`
	SparesExhausted int64 `json:"spares_exhausted"`
	Reclaims        int64 `json:"reclaims"`
	PowerFailures   int64 `json:"power_failures"`
	ReplayedBlocks  int64 `json:"replayed_blocks"`
	LostWrites      int64 `json:"lost_writes"`
	Violations      int64 `json:"violations"`
}

// Report is the fleet-level aggregate a job exposes over GET /jobs/<id>.
// Marshaling is deterministic (sorted components, fixed field order), so
// two aggregations that fold the same runs in the same order produce
// byte-identical JSON — the property the equivalence tests pin.
type Report struct {
	Runs        int       `json:"runs"`
	Failed      int       `json:"failed"`
	MeasuredOps int64     `json:"measured_ops"`
	MaxEndUs    int64     `json:"max_end_us"`
	Energy      EnergyAgg `json:"energy"`
	Read        LatAgg    `json:"read"`
	Write       LatAgg    `json:"write"`
	Spin        SpinAgg   `json:"spin"`
	Flash       FlashAgg  `json:"flash"`
	Cache       CacheAgg  `json:"cache"`
	Faults      *FaultAgg `json:"faults,omitempty"`
}

// Report snapshots the current aggregate. Safe to call mid-job from the
// merger goroutine's side of the lock; the aggregator keeps accumulating.
func (a *Aggregator) Report() *Report {
	r := &Report{
		Runs:        a.runs,
		Failed:      a.failed,
		MeasuredOps: a.measuredOps,
		MaxEndUs:    a.endTimeUs,
		Energy: EnergyAgg{
			TotalJ:      a.energyJ,
			MeanPerRunJ: a.energyRuns.Mean(),
			MaxPerRunJ:  a.energyRuns.Max(),
			P50PerRunJ:  a.energyPerRun.Quantile(0.50),
			P90PerRunJ:  a.energyPerRun.Quantile(0.90),
		},
		Read:  latAgg(&a.read, a.readHist),
		Write: latAgg(&a.write, a.writeHist),
		Spin:  SpinAgg{Ups: a.spinUps, Downs: a.spinDowns},
		Flash: FlashAgg{
			Erases:       a.erases,
			CopiedBlocks: a.copiedBlocks,
			HostBlocks:   a.hostBlocks,
			WriteStalls:  a.writeStalls,
			WriteAmp:     writeAmp(a.hostBlocks, a.copiedBlocks),
			CleaningUs:   a.cleaningUs,
			HostUs:       a.hostUs,
		},
		Cache: CacheAgg{
			Hits:        a.cacheHits,
			Misses:      a.cacheMisses,
			HitRate:     hitRate(a.cacheHits, a.cacheMisses),
			SRAMFlushes: a.sramFlushes,
			SRAMStalled: a.sramStalled,
		},
	}
	for _, comp := range sortedKeys(a.energyByComp) {
		r.Energy.ByComponent = append(r.Energy.ByComponent, ComponentEnergy{comp, a.energyByComp[comp]})
	}
	if a.sawFaults {
		f := a.faults
		r.Faults = &f
	}
	return r
}

func latAgg(s *stats.Summary, h *obsreport.Hist) LatAgg {
	return LatAgg{
		N:        s.N(),
		MeanMs:   s.Mean(),
		MaxMs:    s.Max(),
		StdDevMs: s.StdDev(),
		P50Ms:    h.Quantile(0.50),
		P90Ms:    h.Quantile(0.90),
		P99Ms:    h.Quantile(0.99),
	}
}

func writeAmp(host, copied int64) float64 {
	if host == 0 {
		return 1
	}
	return float64(host+copied) / float64(host)
}

func hitRate(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Chart renders one fleet-level figure. The kinds mirror single-run serve
// mode, re-derived for merged state: timeline is the sleep-duration
// distribution (individual intervals are not retained across runs), energy
// is the per-run total-energy distribution (cumulative curves do not merge
// across independent simulated clocks), and latency overlays the fleet
// read/write response-time histograms.
func (a *Aggregator) Chart(kind string) (*plot.Chart, error) {
	switch kind {
	case "timeline":
		return obsreport.SleepChart(a.figs.Timeline.Finish()), nil
	case "latency":
		c := &plot.Chart{
			Title:  "Fleet response-time distributions",
			XLabel: "response time (ms)",
			YLabel: "operations per bucket",
			LogX:   true,
		}
		if a.readHist.N > 0 {
			c.Series = append(c.Series, plot.Series{Name: "read", Step: true, Points: obsreport.HistPoints(a.readHist)})
		}
		if a.writeHist.N > 0 {
			c.Series = append(c.Series, plot.Series{Name: "write", Step: true, Points: obsreport.HistPoints(a.writeHist)})
		}
		return c, nil
	case "wear":
		return obsreport.WearChart(a.figs.Wear.Finish()), nil
	case "energy":
		c := &plot.Chart{
			Title:  "Per-run energy distribution",
			XLabel: "energy per run (J)",
			YLabel: "runs per bucket",
			LogX:   true,
		}
		if a.energyPerRun.N > 0 {
			c.Series = append(c.Series, plot.Series{Name: "runs", Step: true, Points: obsreport.HistPoints(a.energyPerRun)})
		}
		return c, nil
	case "cleaning":
		return obsreport.CleaningChart(a.figs.Cleaning.Finish()), nil
	case "faults":
		return obsreport.FaultsChart(a.figs.Faults.Finish()), nil
	default:
		return nil, obsreport.UnknownKindError(kind)
	}
}
