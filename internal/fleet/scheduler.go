package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mobilestorage/internal/core"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/plot"
	"mobilestorage/internal/trace"
)

// maxStoredErrors bounds the per-job error list in job status output.
const maxStoredErrors = 8

// maxPendingRuns caps expanded-but-unfinished runs across all jobs — the
// admission control for materialization memory (a max-size grid's RunSpec
// slice is ~100 MB). Vars, not consts, so tests can shrink them.
var maxPendingRuns = 2 * maxRuns

// maxFinishedJobs bounds how many terminal jobs the service retains for
// GET /jobs; older finished jobs are dropped along with their per-job
// registry metrics, keeping a long-lived service's memory flat.
var maxFinishedJobs = 128

// errDraining rejects submissions during graceful shutdown; the HTTP layer
// maps it to 503.
var errDraining = errors.New("service is shutting down; not accepting jobs")

// errBusy rejects submissions that would exceed the pending-run cap; the
// HTTP layer maps it to 429.
var errBusy = errors.New("too many queued runs; retry after running jobs finish")

// Job states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
)

// reporterTracer adapts a report builder to the obs.Tracer a Scope wants.
type reporterTracer struct{ r obsreport.Reporter }

func (t reporterTracer) Emit(e obs.Event) { t.r.Observe(e) }

// Job is one submitted grid: its expanded runs, live aggregate, and SSE
// broadcaster. All mutable state is guarded by mu.
type Job struct {
	ID      string
	Spec    Spec // normalized (defaults applied)
	Total   int
	Workers int

	ej        *expandedJob
	broadcast *Broadcaster
	cancel    context.CancelFunc
	finished  chan struct{} // closed when the merger drains

	mu      sync.Mutex
	state   string
	started int
	done    int
	failed  int
	errs    []string
	agg     *Aggregator
	created time.Time
	ended   time.Time
}

// Status is the GET /jobs/<id> body: job identity, progress, and the live
// fleet aggregate so far (the final aggregate once state is "done").
type Status struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	State    string   `json:"state"`
	Total    int      `json:"total"`
	Started  int      `json:"started"`
	Done     int      `json:"done"`
	Failed   int      `json:"failed"`
	Workers  int      `json:"workers"`
	Errors   []string `json:"errors,omitempty"`
	Report   *Report  `json:"report"`
	Runtime  float64  `json:"runtime_s"`
	Finished bool     `json:"finished"`
}

// Status snapshots the job.
func (j *Job) Status() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.ended
	if end.IsZero() {
		end = time.Now()
	}
	return &Status{
		ID:       j.ID,
		Name:     j.Spec.Name,
		State:    j.state,
		Total:    j.Total,
		Started:  j.started,
		Done:     j.done,
		Failed:   j.failed,
		Workers:  j.Workers,
		Errors:   append([]string(nil), j.errs...),
		Report:   j.agg.Report(),
		Runtime:  end.Sub(j.created).Seconds(),
		Finished: j.state != StateRunning,
	}
}

// Chart renders one fleet figure from the job's current aggregate.
func (j *Job) Chart(kind string) (*plot.Chart, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.agg.Chart(kind)
}

// Events returns the job's SSE broadcaster.
func (j *Job) Events() *Broadcaster { return j.broadcast }

// Cancel stops dispatching new runs; in-flight runs complete and merge.
func (j *Job) Cancel() { j.cancel() }

// Finished reports completion without blocking.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// progressEvent is the SSE "progress" payload.
type progressEvent struct {
	Job     string  `json:"job"`
	State   string  `json:"state"`
	Total   int     `json:"total"`
	Started int     `json:"started"`
	Done    int     `json:"done"`
	Failed  int     `json:"failed"`
	EnergyJ float64 `json:"energy_j"`
}

// samplePoint is one core-sampler snapshot forwarded over SSE.
type samplePoint struct {
	TUs     int64   `json:"t_us"`
	EnergyJ float64 `json:"energy_j"`
}

// sampleEvent is the SSE "sample" payload: one completed run's energy
// timeline from the simulated-time sampler.
type sampleEvent struct {
	Job    string        `json:"job"`
	Run    int           `json:"run"`
	Trace  string        `json:"trace"`
	Device string        `json:"device"`
	Points []samplePoint `json:"points"`
}

// Service owns job submission, the per-job worker pools, and the shared
// metrics registry. One Service backs one storagesim -serve process.
type Service struct {
	reg *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	finished []string // terminal job IDs, oldest first, for retention eviction
	pending  int      // expanded-but-unfinished runs across all jobs
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// NewService returns an idle service registering its metrics in reg (which
// may be nil — the obs API tolerates it).
func NewService(reg *obs.Registry) *Service {
	return &Service{reg: reg, jobs: map[string]*Job{}}
}

// Get returns a job by ID, or nil.
func (s *Service) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// JobsSnapshot returns all jobs in submission order.
func (s *Service) JobsSnapshot() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Submit validates and expands a spec, assigns a job ID, and starts the
// run fan-out. It returns immediately; progress streams via the job's
// broadcaster and Status.
func (s *Service) Submit(spec Spec) (*Job, error) {
	// Validate and size the grid without materializing it, so admission
	// control — drain state and the fleet-wide pending-run cap — runs before
	// the expansion allocates anything proportional to the grid.
	v, err := validate(spec)
	if err != nil {
		return nil, err
	}
	workers := v.spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > v.total {
		workers = v.total
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if s.pending+v.total > maxPendingRuns {
		queued := s.pending
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%d runs queued, job adds %d, cap %d)",
			errBusy, queued, v.total, maxPendingRuns)
	}
	s.pending += v.total
	s.nextID++
	id := fmt.Sprintf("j%d", s.nextID)
	// Reserve the drain barrier with the run reservation: Shutdown observes
	// either the rejection above or a wg it must wait on.
	s.wg.Add(1)
	s.mu.Unlock()

	ej := v.materialize()
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        id,
		Spec:      ej.spec,
		Total:     len(ej.runs),
		Workers:   workers,
		ej:        ej,
		broadcast: NewBroadcaster(),
		cancel:    cancel,
		finished:  make(chan struct{}),
		state:     StateRunning,
		agg:       NewAggregator(),
		created:   time.Now(),
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.reg.Counter("fleet.jobs.submitted").Inc()
	s.reg.Gauge("fleet.jobs.active").Add(1)
	s.reg.Gauge(jobMetric(id, "queue_depth")).Set(float64(j.Total))
	go s.run(ctx, j)
	return j, nil
}

func jobMetric(id, name string) string { return "fleet.job." + id + "." + name }

// runOut is one run's worker output, reordered by the merger.
type runOut struct {
	idx  int
	res  *core.Result
	figs *obsreport.FigureSet
	err  error
}

// run drives one job: workers pull run indices in ascending order from a
// shared channel, and the merger folds completions back in strict index
// order (a pending map bounded by the worker count buffers out-of-order
// arrivals). Strict merge order is what makes the final report
// byte-identical for any worker count.
func (s *Service) run(ctx context.Context, j *Job) {
	defer s.wg.Done()
	started := s.reg.Counter(jobMetric(j.ID, "runs_started"))
	doneC := s.reg.Counter(jobMetric(j.ID, "runs_done"))
	failedC := s.reg.Counter(jobMetric(j.ID, "runs_failed"))
	depth := s.reg.Gauge(jobMetric(j.ID, "queue_depth"))
	busy := s.reg.Gauge(jobMetric(j.ID, "workers_busy"))

	cache := newTraceCache(j.Workers + 2)
	indices := make(chan int)
	results := make(chan runOut, j.Workers)

	go func() {
		defer close(indices)
		for i := range j.ej.runs {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < j.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for idx := range indices {
				j.mu.Lock()
				j.started++
				j.mu.Unlock()
				started.Inc()
				depth.Add(-1)
				busy.Add(1)
				res, figs, err := j.ej.runOne(j.ej.runs[idx], cache)
				busy.Add(-1)
				results <- runOut{idx: idx, res: res, figs: figs, err: err}
			}
		}()
	}
	go func() {
		workers.Wait()
		close(results)
	}()

	// Merge strictly in run-index order. The pending map never exceeds the
	// worker count: a worker can only run ahead while earlier indices are
	// in flight on its siblings.
	pending := make(map[int]runOut, j.Workers)
	next := 0
	for out := range results {
		pending[out.idx] = out
		for {
			o, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			s.mergeOne(j, o, doneC, failedC)
		}
	}

	s.finish(j, ctx.Err() != nil)
}

// mergeOne folds one run into the job aggregate and emits SSE frames.
func (s *Service) mergeOne(j *Job, o runOut, doneC, failedC *obs.Counter) {
	j.mu.Lock()
	if o.err != nil {
		j.failed++
		j.agg.AddFailure()
		if len(j.errs) < maxStoredErrors {
			j.errs = append(j.errs, fmt.Sprintf("run %d: %v", o.idx, o.err))
		}
		failedC.Inc()
	} else {
		j.agg.Add(o.res, o.figs)
		doneC.Inc()
	}
	j.done++
	ev := progressEvent{
		Job: j.ID, State: j.state, Total: j.Total,
		Started: j.started, Done: j.done, Failed: j.failed,
		EnergyJ: j.agg.energyJ,
	}
	j.mu.Unlock()

	if o.err == nil && o.res.Timeline != nil {
		rs := j.ej.runs[o.idx]
		se := sampleEvent{Job: j.ID, Run: o.idx, Trace: rs.Trace, Device: rs.Device}
		for _, p := range o.res.Timeline.Points {
			se.Points = append(se.Points, samplePoint{TUs: p.TUs, EnergyJ: p.Gauges["energy.total_j"]})
		}
		j.broadcast.Send("sample", mustJSON(se))
	}
	j.broadcast.Send("progress", mustJSON(ev))
}

// finish marks the job terminal, broadcasts the guaranteed final frame,
// drops the expanded grid (dead weight once every run has merged), and
// retires the oldest finished jobs past the retention cap — unregistering
// their per-job metrics so a long-lived service stays flat.
func (s *Service) finish(j *Job, cancelled bool) {
	j.mu.Lock()
	if cancelled && j.done < j.Total {
		j.state = StateCancelled
	} else {
		j.state = StateDone
	}
	j.ended = time.Now()
	j.ej = nil // up to maxRuns RunSpecs; everything is merged into j.agg now
	j.mu.Unlock()

	s.mu.Lock()
	s.pending -= j.Total
	s.finished = append(s.finished, j.ID)
	var evicted []string
	for len(s.finished) > maxFinishedJobs {
		id := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, id)
		evicted = append(evicted, id)
	}
	if len(evicted) > 0 {
		keep := s.order[:0]
		for _, id := range s.order {
			if _, ok := s.jobs[id]; ok {
				keep = append(keep, id)
			}
		}
		s.order = keep
	}
	s.mu.Unlock()

	for _, id := range evicted {
		s.reg.Unregister("fleet.job." + id + ".")
	}
	s.reg.Gauge("fleet.jobs.active").Add(-1)
	s.reg.Gauge(jobMetric(j.ID, "queue_depth")).Set(0)
	j.broadcast.Close("done", mustJSON(j.Status()))
	close(j.finished)
}

// Shutdown stops accepting jobs and drains in-flight work. It waits for
// running jobs until ctx expires, then cancels them (in-flight runs still
// complete and merge) and waits for the drain. The returned error is
// ctx.Err() when the deadline forced a cancel.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Snapshot at cancel time, not drain start: a submission admitted
		// just before draining flipped may register its job afterwards.
		for _, j := range s.JobsSnapshot() {
			j.Cancel()
		}
		<-drained
		return ctx.Err()
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // all payload types marshal by construction
	}
	return b
}

// runOne executes one grid cell: trace from the cache, config from the
// spec, a private FigureSet observing the run's event stream, and — when
// sampling is on — a private registry for the simulated-time sampler.
func (ej *expandedJob) runOne(rs RunSpec, cache *traceCache) (*core.Result, *obsreport.FigureSet, error) {
	t, prep, err := cache.get(ej, rs)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := ej.buildConfig(rs, t, prep)
	if err != nil {
		return nil, nil, err
	}
	figs := obsreport.NewFigureSet()
	var reg *obs.Registry
	if ej.spec.SampleEveryS > 0 {
		reg = obs.NewRegistry()
	}
	cfg.Scope = obs.NewScope(reg, reporterTracer{figs})
	res, err := core.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, figs, nil
}

// traceCache memoizes generated traces and their preps. Replica-outermost
// grid order means consecutive runs share a (trace, seed) pair, so a cache
// barely larger than the worker count gets near-perfect hits while bounding
// memory to a handful of traces. Generation is singleflighted: the first
// requester builds, concurrent requesters wait on its once.
type traceCache struct {
	cap   int
	mu    sync.Mutex
	m     map[traceKey]*traceEntry
	order []traceKey
}

type traceKey struct {
	name string
	seed int64
	ops  int
}

type traceEntry struct {
	once sync.Once
	t    *trace.Trace
	prep *core.TracePrep
	err  error
}

func newTraceCache(cap int) *traceCache {
	return &traceCache{cap: cap, m: map[traceKey]*traceEntry{}}
}

func (c *traceCache) get(ej *expandedJob, rs RunSpec) (*trace.Trace, *core.TracePrep, error) {
	key := traceKey{name: rs.Trace, seed: rs.Seed}
	if rs.Trace == "synth" {
		key.ops = ej.spec.SynthOps
	}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &traceEntry{}
		c.m[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.m, evict) // holders keep their entry pointer; only the map forgets
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.t, e.err = ej.generateTrace(rs)
		if e.err == nil {
			e.prep = core.PrepareTrace(e.t)
		}
	})
	return e.t, e.prep, e.err
}
