package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mobilestorage/internal/obs"
)

// smallSpec is a fast multi-device grid for scheduler tests.
func smallSpec(workers int) Spec {
	return Spec{
		Devices:      []string{"cu140", "sdp10", "intel"},
		Traces:       []string{"synth"},
		SynthOps:     300,
		Utilizations: []float64{0.8},
		Replicas:     4,
		Seed:         7,
		Workers:      workers,
	}
}

func runJob(t *testing.T, svc *Service, spec Spec) *Job {
	t.Helper()
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Finished():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	return j
}

// The acceptance property of the whole scheduler: the fleet report is
// byte-identical no matter how many workers raced to produce it, because
// shards merge in run-index order. Run with -race.
func TestWorkerCountEquivalence(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{1, 5} {
		svc := NewService(obs.NewRegistry())
		j := runJob(t, svc, smallSpec(workers))
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("workers=%d: state %q, errors %v", workers, st.State, st.Errors)
		}
		if st.Failed != 0 {
			t.Fatalf("workers=%d: %d failed runs: %v", workers, st.Failed, st.Errors)
		}
		if st.Done != 12 {
			t.Fatalf("workers=%d: %d runs done, want 12", workers, st.Done)
		}
		b, err := json.Marshal(st.Report)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Errorf("1-worker and 5-worker reports differ:\n%s\n%s", reports[0], reports[1])
	}
}

// A grid of 1000+ runs completes with the aggregate holding distributions
// and totals only — no per-run lists survive the merge.
func TestLargeGridConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-run grid in -short mode")
	}
	svc := NewService(obs.NewRegistry())
	spec := Spec{
		Devices:      []string{"cu140", "sdp10"},
		SynthOps:     60,
		Utilizations: []float64{0.5, 0.8, 0.9, 0.95, 0.99},
		Replicas:     100, // 2 × 5 × 100 = 1000 runs
		Workers:      8,
	}
	j := runJob(t, svc, spec)
	st := j.Status()
	if st.State != StateDone || st.Done != 1000 || st.Failed != 0 {
		t.Fatalf("state %q done %d failed %d, errors %v", st.State, st.Done, st.Failed, st.Errors)
	}
	if st.Report.Energy.TotalJ <= 0 {
		t.Error("no energy aggregated")
	}
	if st.Report.Read.N == 0 || st.Report.Read.P99Ms <= 0 {
		t.Errorf("read latency aggregate empty: %+v", st.Report.Read)
	}

	// Constant-memory check: the merged builders must not have retained any
	// per-run series — sleep intervals, fault timestamps, or energy samples.
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, tl := range j.agg.figs.Timeline.Finish() {
		if len(tl.Sleeps) != 0 {
			t.Errorf("aggregate retained %d sleep intervals for %s", len(tl.Sleeps), tl.Dev)
		}
	}
	fr := j.agg.figs.Faults.Finish()
	for _, d := range fr.Devices {
		if len(d.InjectionTimesUs) != 0 {
			t.Errorf("aggregate retained %d injection timestamps for %s", len(d.InjectionTimesUs), d.Dev)
		}
	}
	if got := j.agg.energyPerRun.N; got != 1000 {
		t.Errorf("per-run energy distribution has %d samples, want 1000", got)
	}
	if es := j.agg.figs.Energy.Finish(); len(es) != 0 {
		t.Errorf("aggregate retained %d energy series", len(es))
	}
}

func TestJobProgressFrames(t *testing.T) {
	svc := NewService(obs.NewRegistry())
	j, err := svc.Submit(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := j.Events().Subscribe()
	defer cancel()

	var lastProgress progressEvent
	sawDone := false
	deadline := time.After(60 * time.Second)
	for !sawDone {
		select {
		case f, ok := <-ch:
			if !ok {
				t.Fatal("stream closed without a done frame")
			}
			switch f.Event {
			case "progress":
				var ev progressEvent
				if err := json.Unmarshal(f.Data, &ev); err != nil {
					t.Fatalf("bad progress payload %q: %v", f.Data, err)
				}
				if ev.Done < lastProgress.Done {
					t.Errorf("progress went backwards: %d after %d", ev.Done, lastProgress.Done)
				}
				lastProgress = ev
			case "done":
				var st Status
				if err := json.Unmarshal(f.Data, &st); err != nil {
					t.Fatalf("bad done payload: %v", err)
				}
				if !st.Finished || st.Done != 12 {
					t.Errorf("done frame: %+v", st)
				}
				sawDone = true
			}
		case <-deadline:
			t.Fatal("no done frame")
		}
	}
}

// SampleEveryS wires the core simulated-time sampler into the SSE feed.
func TestSampleFrames(t *testing.T) {
	svc := NewService(obs.NewRegistry())
	spec := Spec{SynthOps: 500, SampleEveryS: 1}
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := j.Events().Subscribe()
	defer cancel()

	sawSample := false
	for f := range ch {
		if f.Event != "sample" {
			continue
		}
		var ev sampleEvent
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatalf("bad sample payload: %v", err)
		}
		if len(ev.Points) == 0 {
			t.Error("sample frame with no points")
		}
		for _, p := range ev.Points {
			if p.EnergyJ < 0 {
				t.Errorf("negative energy sample: %+v", p)
			}
		}
		sawSample = true
	}
	if !sawSample {
		t.Error("no sample frames despite sample_every_s")
	}
}

func TestShutdownDrains(t *testing.T) {
	svc := NewService(obs.NewRegistry())
	j, err := svc.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := j.Status(); st.State != StateDone || st.Done != 12 {
		t.Errorf("after drain: state %q done %d", st.State, st.Done)
	}
	// Draining service rejects new work.
	if _, err := svc.Submit(Spec{}); err == nil {
		t.Error("Submit accepted during shutdown")
	}
}

func TestShutdownDeadlineCancels(t *testing.T) {
	svc := NewService(obs.NewRegistry())
	// A big enough grid that the immediate deadline fires mid-job.
	spec := Spec{SynthOps: 2000, Replicas: 400, Workers: 2}
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain falls through to cancellation
	if err := svc.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned nil despite expired context")
	}
	select {
	case <-j.Finished():
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled job did not finish")
	}
	st := j.Status()
	if st.State != StateCancelled && st.Done != st.Total {
		t.Errorf("after forced shutdown: %+v", st)
	}
	// The terminal frame still arrives for cancelled jobs.
	ch, cancelSub := j.Events().Subscribe()
	defer cancelSub()
	last := Frame{}
	for f := range ch {
		last = f
	}
	if last.Event != "done" {
		t.Errorf("terminal frame event %q", last.Event)
	}
}

// Admission control sizes the grid before materializing it: a job that
// would push the fleet-wide pending-run total past the cap is rejected with
// errBusy, and capacity frees up again once jobs finish.
func TestSubmitPendingRunCap(t *testing.T) {
	old := maxPendingRuns
	maxPendingRuns = 4
	defer func() { maxPendingRuns = old }()

	svc := NewService(obs.NewRegistry())
	_, err := svc.Submit(Spec{SynthOps: 50, Replicas: 5})
	if !errors.Is(err, errBusy) {
		t.Fatalf("oversized submission: err = %v, want errBusy", err)
	}
	// Within the cap it runs; afterwards the reservation is released.
	runJob(t, svc, Spec{SynthOps: 50, Replicas: 4})
	if _, err := svc.Submit(Spec{SynthOps: 50, Replicas: 4}); err != nil {
		t.Fatalf("submission after capacity freed: %v", err)
	}
}

// Finished jobs drop their expanded grid immediately and are retired past
// the retention cap, taking their per-job registry metrics with them.
func TestFinishedJobRetention(t *testing.T) {
	old := maxFinishedJobs
	maxFinishedJobs = 2
	defer func() { maxFinishedJobs = old }()

	reg := obs.NewRegistry()
	svc := NewService(reg)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, runJob(t, svc, Spec{SynthOps: 50}))
	}
	first := jobs[0]
	first.mu.Lock()
	if first.ej != nil {
		t.Error("finished job retained its expanded grid")
	}
	first.mu.Unlock()
	if svc.Get(first.ID) != nil {
		t.Errorf("job %s not retired past the retention cap", first.ID)
	}
	if got := svc.JobsSnapshot(); len(got) != 2 {
		t.Errorf("%d jobs listed, want 2", len(got))
	}
	if snap := reg.String(); containsStr(snap, jobMetric(first.ID, "runs_done")) {
		t.Errorf("retired job's metrics still registered:\n%s", snap)
	}
	// The retained jobs keep theirs.
	if snap := reg.String(); !containsStr(snap, jobMetric(jobs[2].ID, "runs_done")) {
		t.Errorf("live job's metrics missing:\n%s", snap)
	}
}

func TestSubmitMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	svc := NewService(reg)
	j := runJob(t, svc, Spec{SynthOps: 100})
	if got := reg.Gauge(jobMetric(j.ID, "queue_depth")).Value(); got != 0 {
		t.Errorf("queue depth after completion = %g", got)
	}
	if got := reg.Gauge("fleet.jobs.active").Value(); got != 0 {
		t.Errorf("active jobs after completion = %g", got)
	}
	snap := reg.String()
	for _, want := range []string{
		jobMetric(j.ID, "runs_started"),
		jobMetric(j.ID, "runs_done"),
		"fleet.jobs.submitted",
	} {
		if !containsStr(snap, want) {
			t.Errorf("registry missing %q:\n%s", want, snap)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || len(needle) == 0 ||
		indexOf(haystack, needle) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
