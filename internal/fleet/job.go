package fleet

import (
	"encoding/json"
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

// maxRuns caps one job's expanded grid. The pipeline is constant-memory in
// the number of runs, so the cap guards wall-clock surprise (a fat-fingered
// grid), not memory.
const maxRuns = 1_000_000

// maxWorkers caps a job's requested shard concurrency.
const maxWorkers = 256

// Spec is the body of POST /jobs: a parameter grid over the paper's knobs.
// Every list axis defaults to a single paper-default entry, so the empty
// spec is one run of the synthetic workload on the cu140 disk; the
// cartesian product of the axes times Replicas is the job's run count.
// Replicas re-run every grid cell with a derived workload seed — the
// Monte-Carlo axis.
type Spec struct {
	// Name is a free-form label echoed in listings and the dashboard.
	Name string `json:"name,omitempty"`

	// Devices are catalog device names (see DeviceNames). Default: cu140.
	Devices []string `json:"devices,omitempty"`
	// Source picks device parameter provenance: "", "measured", "datasheet".
	Source string `json:"source,omitempty"`
	// Traces are workload presets (mac, dos, hp, synth). Default: synth.
	Traces []string `json:"traces,omitempty"`
	// SynthOps overrides the synthetic workload length (0 = the preset's
	// default of 20000 operations). Applies to "synth" traces only.
	SynthOps int `json:"synth_ops,omitempty"`
	// Utilizations are flash utilization points. Default: 0.8.
	Utilizations []float64 `json:"utilizations,omitempty"`
	// Cleaning are flash-card cleaning policies. Default: greedy.
	Cleaning []string `json:"cleaning,omitempty"`
	// DRAMKB are DRAM cache sizes in KB; -1 means the CLI default (2 MB,
	// except the hp trace which runs uncached). Default: -1.
	DRAMKB []int64 `json:"dram_kb,omitempty"`
	// SRAMKB are SRAM write-buffer sizes in KB; -1 means the CLI default
	// (32 KB for disks, none for flash). Default: -1.
	SRAMKB []int64 `json:"sram_kb,omitempty"`
	// SpinDownS are disk spin-down thresholds in seconds. Default: 5.
	SpinDownS []float64 `json:"spindown_s,omitempty"`
	// FaultPlans are inline fault-injection plans (docs/FAULTS.md schema);
	// each is one grid axis value. Omit for fault-free runs.
	FaultPlans []json.RawMessage `json:"fault_plans,omitempty"`
	// WriteBack enables the write-back DRAM cache ablation for every run.
	WriteBack bool `json:"writeback,omitempty"`

	// Replicas re-runs the whole grid with per-replica derived seeds.
	// Default: 1.
	Replicas int `json:"replicas,omitempty"`
	// Seed is the base seed replica and fault seeds derive from. Default: 1.
	Seed int64 `json:"seed,omitempty"`

	// Workers bounds the job's shard concurrency; 0 means GOMAXPROCS.
	// Aggregation order is run order regardless, so results are
	// byte-identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// SampleEveryS enables each run's simulated-time sampler at this
	// interval (seconds) and streams the resulting energy samples over the
	// job's SSE feed. 0 disables per-run sampling.
	SampleEveryS float64 `json:"sample_every_s,omitempty"`
}

// withDefaults fills the single-entry defaults for omitted axes.
func (s Spec) withDefaults() Spec {
	if len(s.Devices) == 0 {
		s.Devices = []string{"cu140"}
	}
	if len(s.Traces) == 0 {
		s.Traces = []string{"synth"}
	}
	if len(s.Utilizations) == 0 {
		s.Utilizations = []float64{0.8}
	}
	if len(s.Cleaning) == 0 {
		s.Cleaning = []string{"greedy"}
	}
	if len(s.DRAMKB) == 0 {
		s.DRAMKB = []int64{-1}
	}
	if len(s.SRAMKB) == 0 {
		s.SRAMKB = []int64{-1}
	}
	if len(s.SpinDownS) == 0 {
		s.SpinDownS = []float64{5}
	}
	if s.Replicas <= 0 {
		s.Replicas = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// RunSpec is one fully-resolved device-run of a job's grid.
type RunSpec struct {
	Index       int     `json:"index"`
	Trace       string  `json:"trace"`
	Device      string  `json:"device"`
	Utilization float64 `json:"utilization"`
	Cleaning    string  `json:"cleaning"`
	DRAMKB      int64   `json:"dram_kb"`
	SRAMKB      int64   `json:"sram_kb"`
	SpinDownS   float64 `json:"spindown_s"`
	// Plan indexes Spec.FaultPlans; -1 means fault-free.
	Plan int `json:"plan"`
	// Seed is the workload seed for this run's replica; FaultSeed drives the
	// fault injector. Both derive deterministically from Spec.Seed.
	Seed      int64 `json:"seed"`
	FaultSeed int64 `json:"fault_seed"`
	Replica   int   `json:"replica"`
}

// splitmix64 is the SplitMix64 output function — the same generator the
// fault injector uses — here deriving independent per-replica and per-run
// seeds from the job's base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// deriveSeed mixes a stream tag and an index into the base seed. Seeds stay
// non-zero so downstream "0 means default" conventions never trigger.
func deriveSeed(base int64, tag uint64, n int) int64 {
	s := int64(splitmix64(uint64(base) ^ tag ^ uint64(n)<<20))
	if s == 0 {
		s = 1
	}
	return s
}

// Seed-derivation stream tags.
const (
	seedTagTrace = 0x74726163 // "trac"
	seedTagFault = 0x666c7461 // "flta"
)

// expandedJob is a validated spec plus its materialized grid.
type expandedJob struct {
	spec  Spec
	plans []*fault.Plan
	runs  []RunSpec
}

// validated is a normalized, fully-checked spec plus its grid size — the
// cheap half of expansion. The scheduler admits or rejects a job from this
// before materialize allocates the run slice.
type validated struct {
	spec  Spec
	plans []*fault.Plan
	total int
}

// validate normalizes the spec and checks every axis. The grid is sized
// with stepwise int64 multiplication checked against maxRuns after every
// factor: Replicas and the axis lengths arrive from untrusted JSON, and a
// single unchecked int product can wrap a huge grid to a small positive
// total that slips past the cap.
func validate(s Spec) (*validated, error) {
	s = s.withDefaults()
	var probe core.Config
	for _, d := range s.Devices {
		if err := SelectDevice(&probe, d, s.Source); err != nil {
			return nil, err
		}
	}
	for _, name := range s.Traces {
		if !knownTrace(name) {
			return nil, fmt.Errorf("unknown trace %q (want one of %v)", name, workload.Names())
		}
	}
	for _, u := range s.Utilizations {
		if u <= 0 || u > 0.99 {
			return nil, fmt.Errorf("utilization %.3f out of (0, 0.99]", u)
		}
	}
	for _, sd := range s.SpinDownS {
		if sd < 0 {
			return nil, fmt.Errorf("negative spin-down threshold %g", sd)
		}
	}
	if s.SynthOps < 0 {
		return nil, fmt.Errorf("negative synth_ops %d", s.SynthOps)
	}
	if s.Replicas > maxRuns {
		return nil, fmt.Errorf("replicas %d exceeds the %d-run limit", s.Replicas, maxRuns)
	}
	if s.Workers < 0 || s.Workers > maxWorkers {
		return nil, fmt.Errorf("workers %d out of [0, %d]", s.Workers, maxWorkers)
	}
	if s.SampleEveryS < 0 {
		return nil, fmt.Errorf("negative sample_every_s %g", s.SampleEveryS)
	}
	plans := make([]*fault.Plan, 0, len(s.FaultPlans))
	for i, raw := range s.FaultPlans {
		p, err := fault.ParsePlan(raw)
		if err != nil {
			return nil, fmt.Errorf("fault_plans[%d]: %w", i, err)
		}
		plans = append(plans, p)
	}
	planAxis := len(plans)
	if planAxis == 0 {
		planAxis = 1 // one fault-free cell
	}

	// Every factor below is ≤ maxRuns (replicas checked above, axis lengths
	// bounded by the request body), so the running int64 product cannot wrap
	// before the per-step cap check rejects it.
	total := int64(s.Replicas)
	for _, axis := range []int{len(s.Traces), planAxis, len(s.Devices),
		len(s.Utilizations), len(s.Cleaning), len(s.DRAMKB), len(s.SRAMKB), len(s.SpinDownS)} {
		total *= int64(axis)
		if total > maxRuns {
			return nil, fmt.Errorf("grid expands to more than %d runs", maxRuns)
		}
	}
	return &validated{spec: s, plans: plans, total: int(total)}, nil
}

// materialize builds the run grid. Replicas iterate outermost so consecutive
// run indices share a (trace, seed) pair — that is what makes the
// scheduler's small trace cache effective.
func (v *validated) materialize() *expandedJob {
	s := v.spec
	plans := v.plans
	planAxis := len(plans)
	if planAxis == 0 {
		planAxis = 1
	}
	ej := &expandedJob{spec: s, plans: plans, runs: make([]RunSpec, 0, v.total)}
	idx := 0
	for rep := 0; rep < s.Replicas; rep++ {
		traceSeed := deriveSeed(s.Seed, seedTagTrace, rep)
		for _, tr := range s.Traces {
			for plan := 0; plan < planAxis; plan++ {
				planIdx := plan
				if len(plans) == 0 {
					planIdx = -1
				}
				for _, dev := range s.Devices {
					for _, util := range s.Utilizations {
						for _, clean := range s.Cleaning {
							for _, dram := range s.DRAMKB {
								for _, sram := range s.SRAMKB {
									for _, spin := range s.SpinDownS {
										ej.runs = append(ej.runs, RunSpec{
											Index:       idx,
											Trace:       tr,
											Device:      dev,
											Utilization: util,
											Cleaning:    clean,
											DRAMKB:      dram,
											SRAMKB:      sram,
											SpinDownS:   spin,
											Plan:        planIdx,
											Seed:        traceSeed,
											FaultSeed:   deriveSeed(s.Seed, seedTagFault, idx),
											Replica:     rep,
										})
										idx++
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return ej
}

// expand validates the spec and materializes the grid in one step.
func expand(s Spec) (*expandedJob, error) {
	v, err := validate(s)
	if err != nil {
		return nil, err
	}
	return v.materialize(), nil
}

func knownTrace(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// generateTrace materializes one run's workload.
func (ej *expandedJob) generateTrace(rs RunSpec) (*trace.Trace, error) {
	if rs.Trace == "synth" && ej.spec.SynthOps > 0 {
		return workload.Synth(workload.SynthConfig{Seed: rs.Seed, Ops: ej.spec.SynthOps})
	}
	return workload.GenerateByName(rs.Trace, rs.Seed)
}

// buildConfig assembles the core.Config for one run, mirroring the
// storagesim CLI's defaulting (DRAM 2 MB except hp, SRAM 32 KB for disks).
func (ej *expandedJob) buildConfig(rs RunSpec, t *trace.Trace, prep *core.TracePrep) (core.Config, error) {
	cfg := core.Config{
		Trace:            t,
		Prep:             prep,
		WriteBack:        ej.spec.WriteBack,
		SpinDown:         units.FromSeconds(rs.SpinDownS),
		CleaningPolicy:   rs.Cleaning,
		FlashUtilization: rs.Utilization,
	}
	if err := SelectDevice(&cfg, rs.Device, ej.spec.Source); err != nil {
		return cfg, err
	}
	switch {
	case rs.DRAMKB >= 0:
		cfg.DRAMBytes = units.Bytes(rs.DRAMKB) * units.KB
	case t.Name == "hp":
		cfg.DRAMBytes = 0
	default:
		cfg.DRAMBytes = 2 * units.MB
	}
	switch {
	case rs.SRAMKB >= 0:
		cfg.SRAMBytes = units.Bytes(rs.SRAMKB) * units.KB
	case cfg.Kind == core.MagneticDisk:
		cfg.SRAMBytes = 32 * units.KB
	}
	if rs.Plan >= 0 {
		cfg.Faults = ej.plans[rs.Plan]
		cfg.FaultSeed = rs.FaultSeed
	}
	if ej.spec.SampleEveryS > 0 {
		cfg.SampleEvery = units.FromSeconds(ej.spec.SampleEveryS)
	}
	return cfg, nil
}
