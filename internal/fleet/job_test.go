package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"mobilestorage/internal/core"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

func TestExpandDefaults(t *testing.T) {
	ej, err := expand(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ej.runs) != 1 {
		t.Fatalf("empty spec expanded to %d runs, want 1", len(ej.runs))
	}
	rs := ej.runs[0]
	if rs.Device != "cu140" || rs.Trace != "synth" || rs.Utilization != 0.8 ||
		rs.Cleaning != "greedy" || rs.DRAMKB != -1 || rs.SRAMKB != -1 ||
		rs.SpinDownS != 5 || rs.Plan != -1 || rs.Replica != 0 {
		t.Errorf("default run: %+v", rs)
	}
	if rs.Seed == 0 || rs.FaultSeed == 0 {
		t.Errorf("derived seeds must be non-zero: %+v", rs)
	}
}

func TestExpandGridOrderAndSeeds(t *testing.T) {
	ej, err := expand(Spec{
		Devices:      []string{"cu140", "sdp10"},
		Utilizations: []float64{0.5, 0.9},
		Replicas:     3,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ej.runs) != 12 {
		t.Fatalf("%d runs, want 12 (2 devices × 2 utilizations × 3 replicas)", len(ej.runs))
	}
	// Replicas iterate outermost: the first 4 runs are replica 0, sharing
	// one workload seed; the next 4 are replica 1 with a different seed.
	for i, rs := range ej.runs {
		if want := i / 4; rs.Replica != want {
			t.Errorf("run %d: replica %d, want %d", i, rs.Replica, want)
		}
		if rs.Index != i {
			t.Errorf("run %d: index %d", i, rs.Index)
		}
	}
	if ej.runs[0].Seed != ej.runs[3].Seed {
		t.Error("runs within a replica must share a workload seed")
	}
	if ej.runs[0].Seed == ej.runs[4].Seed {
		t.Error("different replicas must get different workload seeds")
	}
	// Fault seeds are per-run streams, distinct from workload seeds.
	seen := map[int64]bool{}
	for _, rs := range ej.runs {
		if seen[rs.FaultSeed] {
			t.Fatalf("duplicate fault seed %d", rs.FaultSeed)
		}
		seen[rs.FaultSeed] = true
	}
	// Same spec, same grid: expansion is deterministic.
	ej2, err := expand(Spec{
		Devices:      []string{"cu140", "sdp10"},
		Utilizations: []float64{0.5, 0.9},
		Replicas:     3,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ej.runs)
	b, _ := json.Marshal(ej2.runs)
	if string(a) != string(b) {
		t.Error("expansion is not deterministic")
	}
}

func TestExpandValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad device", Spec{Devices: []string{"floppy"}}, "unknown device"},
		{"bad trace", Spec{Traces: []string{"win95"}}, "unknown trace"},
		{"bad utilization", Spec{Utilizations: []float64{1.5}}, "utilization"},
		{"negative spindown", Spec{SpinDownS: []float64{-1}}, "spin-down"},
		{"negative ops", Spec{SynthOps: -5}, "synth_ops"},
		{"too many workers", Spec{Workers: maxWorkers + 1}, "workers"},
		{"negative sample", Spec{SampleEveryS: -1}, "sample_every_s"},
		{"bad fault plan", Spec{FaultPlans: []json.RawMessage{json.RawMessage(`{"nope`)}}, "fault_plans[0]"},
		{"grid too big", Spec{Replicas: maxRuns + 1}, "limit"},
		// A replica count chosen so the naive 9-factor int product wraps to a
		// tiny positive total (4 devices × (2^62+1) ≡ 4 mod 2^64) must still
		// be rejected, not expanded for ~4.6e18 iterations.
		{"overflowing grid", Spec{
			Replicas: 4611686018427387905,
			Devices:  []string{"cu140", "cu140", "cu140", "cu140"},
		}, "limit"},
		{"overflowing axes", Spec{
			Replicas:     maxRuns,
			Devices:      []string{"cu140", "cu140"},
			Utilizations: []float64{0.5, 0.8},
		}, "expands"},
	}
	for _, c := range cases {
		_, err := expand(c.spec)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	ej, err := expand(Spec{Devices: []string{"cu140", "intel"}})
	if err != nil {
		t.Fatal(err)
	}

	// Disk: default DRAM 2 MB and SRAM 32 KB, mirroring the CLI.
	diskRun := ej.runs[0]
	cfg, err := ej.buildConfig(diskRun, &trace.Trace{Name: "synth"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != core.MagneticDisk {
		t.Errorf("kind %v", cfg.Kind)
	}
	if cfg.DRAMBytes != 2*units.MB {
		t.Errorf("disk DRAM = %d, want 2 MB", cfg.DRAMBytes)
	}
	if cfg.SRAMBytes != 32*units.KB {
		t.Errorf("disk SRAM = %d, want 32 KB", cfg.SRAMBytes)
	}

	// Flash card: no SRAM by default.
	cardRun := ej.runs[1]
	cfg, err = ej.buildConfig(cardRun, &trace.Trace{Name: "synth"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != core.FlashCard {
		t.Errorf("kind %v", cfg.Kind)
	}
	if cfg.SRAMBytes != 0 {
		t.Errorf("card SRAM = %d, want 0", cfg.SRAMBytes)
	}

	// The hp trace runs uncached (§4.1), like the CLI default.
	cfg, err = ej.buildConfig(diskRun, &trace.Trace{Name: "hp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRAMBytes != 0 {
		t.Errorf("hp DRAM = %d, want 0", cfg.DRAMBytes)
	}
}

func TestBuildConfigExplicitSizes(t *testing.T) {
	ej, err := expand(Spec{DRAMKB: []int64{64}, SRAMKB: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ej.buildConfig(ej.runs[0], &trace.Trace{Name: "synth"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRAMBytes != 64*units.KB {
		t.Errorf("DRAM = %d, want 64 KB", cfg.DRAMBytes)
	}
	if cfg.SRAMBytes != 0 {
		t.Errorf("SRAM = %d, want 0 (explicitly disabled)", cfg.SRAMBytes)
	}
}

func TestExpandFaultPlanAxis(t *testing.T) {
	plan := json.RawMessage(`{"read_error_rate": 0.001, "max_retries": 3}`)
	ej, err := expand(Spec{FaultPlans: []json.RawMessage{plan, plan}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ej.runs) != 2 {
		t.Fatalf("%d runs, want 2 (one per plan)", len(ej.runs))
	}
	if ej.runs[0].Plan != 0 || ej.runs[1].Plan != 1 {
		t.Errorf("plan indices: %d, %d", ej.runs[0].Plan, ej.runs[1].Plan)
	}
	cfg, err := ej.buildConfig(ej.runs[1], &trace.Trace{Name: "synth"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil {
		t.Error("fault plan not wired into config")
	}
	if cfg.FaultSeed != ej.runs[1].FaultSeed {
		t.Error("fault seed not wired into config")
	}
}
