// Package fleet turns the single-run simulator into a simulation service:
// a job API accepts a config or parameter grid, a bounded sharded worker
// pool fans the runs out in-process, and fleet-level aggregates (percentile
// latency, energy, wear, cleaning, faults) stream out through mergeable
// report builders as shards complete — constant memory in the number of
// runs, with live progress over Server-Sent Events and per-report SVG
// figures. See docs/SERVICE.md.
package fleet

import (
	"fmt"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
)

// DeviceNames lists the catalog devices a job may reference.
func DeviceNames() []string {
	return []string{"cu140", "kh", "sdp10", "sdp5", "intel", "intel2+"}
}

// SelectDevice fills cfg's storage kind and parameters for a catalog device
// name. source picks the parameter provenance: "measured", "datasheet", or
// "" for the best available (measured when the paper reports it, datasheet
// otherwise). This is the one device-name resolver shared by the storagesim
// CLI and the fleet job API.
func SelectDevice(cfg *core.Config, name, source string) error {
	pick := func(measured, datasheet func() bool) error {
		switch source {
		case "", "measured":
			if measured() {
				return nil
			}
			if source == "measured" {
				return fmt.Errorf("no measured parameters for %q", name)
			}
			datasheet()
			return nil
		case "datasheet":
			if datasheet() {
				return nil
			}
			return fmt.Errorf("no datasheet parameters for %q", name)
		default:
			return fmt.Errorf("unknown source %q (want measured or datasheet)", source)
		}
	}
	switch name {
	case "cu140":
		cfg.Kind = core.MagneticDisk
		return pick(
			func() bool { cfg.Disk = device.CU140Measured(); return true },
			func() bool { cfg.Disk = device.CU140Datasheet(); return true },
		)
	case "kh":
		cfg.Kind = core.MagneticDisk
		return pick(
			func() bool { return false },
			func() bool { cfg.Disk = device.KittyhawkDatasheet(); return true },
		)
	case "sdp10":
		cfg.Kind = core.FlashDisk
		return pick(
			func() bool { cfg.FlashDiskParams = device.SDP10Measured(); return true },
			func() bool { cfg.FlashDiskParams = device.SDP10Datasheet(); return true },
		)
	case "sdp5":
		cfg.Kind = core.FlashDisk
		return pick(
			func() bool { return false },
			func() bool { cfg.FlashDiskParams = device.SDP5Datasheet(); return true },
		)
	case "intel":
		cfg.Kind = core.FlashCard
		return pick(
			func() bool { cfg.FlashCardParams = device.IntelSeries2Measured(); return true },
			func() bool { cfg.FlashCardParams = device.IntelSeries2Datasheet(); return true },
		)
	case "intel2+":
		cfg.Kind = core.FlashCard
		return pick(
			func() bool { return false },
			func() bool { cfg.FlashCardParams = device.IntelSeries2PlusDatasheet(); return true },
		)
	default:
		return fmt.Errorf("unknown device %q", name)
	}
}
