package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxSpecBytes bounds a POST /jobs body.
const maxSpecBytes = 1 << 20

// RegisterRoutes mounts the job API on mux (Go 1.22 method+wildcard
// patterns):
//
//	POST /jobs                  submit a grid (Spec JSON) → 202 + Status
//	GET  /jobs                  all job statuses, submission order
//	GET  /jobs/{id}             one job's live status + fleet aggregate
//	GET  /jobs/{id}/plot/{kind} fleet figure as SVG
//	GET  /events/{id}           SSE progress stream (terminal "done" frame)
func (s *Service) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/plot/{kind}", s.handleJobPlot)
	mux.HandleFunc("GET /events/{id}", s.handleEvents)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(mustJSON(v), '\n'))
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, errDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, errBusy):
			code = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.JobsSnapshot()
	out := make([]*Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) jobOr404(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j := s.Get(id)
	if j == nil {
		http.Error(w, fmt.Sprintf("unknown job %q", id), http.StatusNotFound)
	}
	return j
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleJobPlot(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r)
	if j == nil {
		return
	}
	c, err := j.Chart(r.PathValue("kind"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := c.Render(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleEvents streams the job's frames in SSE wire format until the
// terminal frame or client disconnect. The server's WriteTimeout would cut
// long-lived streams, so the handler clears the connection's write deadline
// via ResponseController — the one endpoint that legitimately outlives it.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r)
	if j == nil {
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.SetWriteDeadline(time.Time{}); err != nil && !errors.Is(err, http.ErrNotSupported) {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 2000\n\n")
	rc.Flush()

	frames, cancel := j.Events().Subscribe()
	defer cancel()
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				return // terminal frame already delivered
			}
			if _, err := f.WriteTo(w); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
