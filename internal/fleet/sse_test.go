package fleet

import (
	"fmt"
	"strings"
	"testing"
)

func TestBroadcasterOrderingAndTerminal(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe()
	defer cancel()

	for i := 0; i < 5; i++ {
		b.Send("progress", []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	b.Close("done", []byte(`{"final":true}`))

	var frames []Frame
	for f := range ch {
		frames = append(frames, f)
	}
	if len(frames) != 6 {
		t.Fatalf("%d frames, want 6", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].ID <= frames[i-1].ID {
			t.Errorf("frame IDs not increasing: %d then %d", frames[i-1].ID, frames[i].ID)
		}
	}
	last := frames[len(frames)-1]
	if last.Event != "done" || string(last.Data) != `{"final":true}` {
		t.Errorf("terminal frame: %+v", last)
	}
}

// A subscriber that never drains still receives the terminal frame: Close
// evicts its oldest buffered frame to make room.
func TestBroadcasterSlowSubscriberGetsDone(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe()
	defer cancel()

	for i := 0; i < subBuffer*3; i++ { // overflow the buffer; extras drop
		b.Send("progress", []byte(`{}`))
	}
	b.Close("done", []byte(`{"final":true}`))

	var last Frame
	n := 0
	for f := range ch {
		last = f
		n++
	}
	if n > subBuffer {
		t.Errorf("slow subscriber got %d frames, buffer is %d", n, subBuffer)
	}
	if last.Event != "done" {
		t.Errorf("terminal frame event %q, want done", last.Event)
	}
}

func TestBroadcasterLateSubscriber(t *testing.T) {
	b := NewBroadcaster()
	b.Send("progress", []byte(`{"n":1}`))
	b.Close("done", []byte(`{"final":true}`))

	ch, cancel := b.Subscribe()
	defer cancel()
	var frames []Frame
	for f := range ch {
		frames = append(frames, f)
	}
	if len(frames) != 2 {
		t.Fatalf("late subscriber got %d frames, want progress + done", len(frames))
	}
	if frames[0].Event != "progress" || frames[1].Event != "done" {
		t.Errorf("late subscriber frames: %q then %q", frames[0].Event, frames[1].Event)
	}
}

func TestBroadcasterCancelIdempotent(t *testing.T) {
	b := NewBroadcaster()
	_, cancel := b.Subscribe()
	cancel()
	cancel() // second cancel must not panic
	b.Send("progress", []byte(`{}`))
	b.Close("done", []byte(`{}`))
}

func TestFrameWireFormat(t *testing.T) {
	f := Frame{ID: 7, Event: "progress", Data: []byte(`{"done":3}`)}
	got := f.String()
	want := "id: 7\nevent: progress\ndata: {\"done\":3}\n\n"
	if got != want {
		t.Errorf("wire format:\n%q\nwant\n%q", got, want)
	}
	if !strings.HasSuffix(got, "\n\n") {
		t.Error("frame must end with a blank line")
	}
}
