package fleet

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// subBuffer is each subscriber's frame buffer. Progress and sample frames
// are dropped when a slow subscriber's buffer is full (the next frame
// supersedes them anyway); the terminal frame always gets through.
const subBuffer = 64

// Frame is one Server-Sent Event: an incrementing ID, an event name, and a
// JSON data payload.
type Frame struct {
	ID    int64
	Event string
	Data  []byte
}

// WriteTo serializes the frame in SSE wire format (id:/event:/data: lines
// terminated by a blank line). Payloads are JSON and therefore single-line;
// embedded newlines would need data-line splitting, which mustJSON never
// produces.
func (f Frame) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", f.ID, f.Event, f.Data)
	return int64(n), err
}

// String renders the wire format — handy in tests and logs.
func (f Frame) String() string {
	var b strings.Builder
	f.WriteTo(&b)
	return b.String()
}

// Broadcaster fans a job's event frames out to any number of SSE
// subscribers. Frames carry monotonically increasing IDs assigned under the
// lock, so every subscriber observes the same ordering. Send drops frames
// to subscribers whose buffers are full; Close delivers one final frame to
// every subscriber — evicting their oldest buffered frame if needed — then
// closes their channels. Subscribers arriving after Close receive the last
// progress frame (if any) and the final frame immediately.
type Broadcaster struct {
	mu     sync.Mutex
	nextID int64
	subs   map[chan Frame]struct{}
	last   *Frame // latest progress frame, primes new subscribers
	final  *Frame // terminal frame once closed
	closed bool
}

// NewBroadcaster returns an open broadcaster with no subscribers.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: map[chan Frame]struct{}{}}
}

// Subscribe registers a new subscriber and returns its frame channel plus a
// cancel function (idempotent; always call it). The channel is primed with
// the latest progress frame so a dashboard renders state immediately, and
// is closed after the terminal frame.
func (b *Broadcaster) Subscribe() (<-chan Frame, func()) {
	ch := make(chan Frame, subBuffer)
	b.mu.Lock()
	if b.last != nil {
		ch <- *b.last
	}
	if b.closed {
		if b.final != nil {
			ch <- *b.final
		}
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()

	var once sync.Once
	return ch, func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[ch]; ok {
				delete(b.subs, ch)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
}

// Send broadcasts a frame, dropping it for subscribers with full buffers.
// No-op after Close.
func (b *Broadcaster) Send(event string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextID++
	f := Frame{ID: b.nextID, Event: event, Data: data}
	if event == "progress" {
		last := f
		b.last = &last
	}
	for ch := range b.subs {
		select {
		case ch <- f:
		default: // slow subscriber: drop; a later frame supersedes this one
		}
	}
}

// Close broadcasts the terminal frame — guaranteed delivery: a full
// subscriber buffer loses its oldest frame to make room — then closes every
// subscriber channel. Later Subscribe calls replay the terminal frame.
func (b *Broadcaster) Close(event string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.nextID++
	f := Frame{ID: b.nextID, Event: event, Data: data}
	b.final = &f
	for ch := range b.subs {
		for {
			select {
			case ch <- f:
			default:
				select {
				case <-ch: // evict the oldest buffered frame
				default:
				}
				continue
			}
			break
		}
		close(ch)
		delete(b.subs, ch)
	}
}
