package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PlanSet maps array member names to their fault plans: each member of a
// striped or mirrored array carries its own fault domain. Keys are member
// names ("m0", "m1", …) matching the array's member order; the special key
// "*" supplies a default plan for members without an explicit entry.
type PlanSet map[string]*Plan

// ParsePlanSet decodes and validates a JSON object of member name → plan.
// Unknown plan fields are rejected exactly as in ParsePlan, and member
// plans may not schedule power failures — power loss is a whole-system
// event and belongs in the top-level plan.
func ParsePlanSet(data []byte) (PlanSet, error) {
	var raw map[string]json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("fault: parsing plan set: %w", err)
	}
	ps := make(PlanSet, len(raw))
	for name, msg := range raw {
		if err := validateMemberKey(name); err != nil {
			return nil, err
		}
		p, err := ParsePlan(msg)
		if err != nil {
			return nil, fmt.Errorf("fault: member %q: %w", name, err)
		}
		if len(p.PowerFailAtUs) > 0 {
			return nil, fmt.Errorf("fault: member %q: power_fail_at_us is system-wide; schedule it in the top-level plan", name)
		}
		ps[name] = p
	}
	return ps, nil
}

// validateMemberKey accepts "*" or "m<N>" member names.
func validateMemberKey(name string) error {
	if name == "*" {
		return nil
	}
	if rest, ok := strings.CutPrefix(name, "m"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n >= 0 && rest == strconv.Itoa(n) {
			return nil
		}
	}
	return fmt.Errorf("fault: plan-set key %q is not a member name (want \"m0\", \"m1\", … or \"*\")", name)
}

// Member resolves the plan for member i: an explicit "m<i>" entry wins,
// then the "*" default, then nil (no faults). Nil-safe.
func (ps PlanSet) Member(i int) *Plan {
	if ps == nil {
		return nil
	}
	if p, ok := ps["m"+strconv.Itoa(i)]; ok {
		return p
	}
	return ps["*"]
}

// Validate checks every member plan.
func (ps PlanSet) Validate() error {
	names := make([]string, 0, len(ps))
	for name := range ps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := validateMemberKey(name); err != nil {
			return err
		}
		p := ps[name]
		if p == nil {
			continue
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("fault: member %q: %w", name, err)
		}
		if len(p.PowerFailAtUs) > 0 {
			return fmt.Errorf("fault: member %q: power_fail_at_us is system-wide; schedule it in the top-level plan", name)
		}
	}
	return nil
}

// MemberSeed derives member i's injector seed from the run seed: a
// splitmix64 step keyed by the index, so members draw independent fault
// sequences while the whole run stays reproducible from one seed.
func MemberSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
