package fault

import (
	"reflect"
	"testing"

	"mobilestorage/internal/units"
)

// FuzzFaultPlan feeds hostile JSON to ParsePlan and, when a plan survives
// validation, drives an injector through a fixed op schedule twice with the
// same seed: parsing must never panic, accepted plans must satisfy their own
// documented bounds, and injection must be deterministic per seed.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(`{}`), int64(0))
	f.Add([]byte(`{"read_error_rate":0.5}`), int64(1))
	f.Add([]byte(`{"write_error_rate":1,"max_retries":16,"backoff_us":1,"max_backoff_us":2}`), int64(42))
	f.Add([]byte(`{"erase_error_rate":0.01,"wear_out_after":5,"spare_segments":64}`), int64(-7))
	f.Add([]byte(`{"power_fail_at_us":[0,0,9223372036854775807]}`), int64(9))
	f.Add([]byte(`{"read_error_rate":1e-300,"max_backoff_us":9223372036854775807}`), int64(3))
	f.Add([]byte(`{"read_error_rate":2}`), int64(0))
	f.Add([]byte(`"not an object"`), int64(0))

	run := func(in *Injector) (report *Report, attempts [60]int64) {
		ops := []Op{OpRead, OpWrite, OpErase}
		for i := range attempts {
			att, backoff := in.Attempts(ops[i%3], "dev", units.Time(i))
			if att < 1 {
				panic("attempt count below 1")
			}
			if backoff < 0 {
				panic("negative backoff")
			}
			attempts[i] = att
		}
		return in.Report(), attempts
	}

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		p, err := ParsePlan(data)
		if err != nil {
			return // rejected input; the property is "no panic"
		}
		// Accepted plans obey their own bounds.
		for _, r := range []float64{p.ReadErrorRate, p.WriteErrorRate, p.EraseErrorRate} {
			if !(r >= 0 && r <= 1) {
				t.Fatalf("accepted plan has rate %v", r)
			}
		}
		if p.MaxRetries < 0 || p.MaxRetries > maxMaxRetries {
			t.Fatalf("accepted plan has max_retries %d", p.MaxRetries)
		}
		in1 := NewInjector(p, seed, nil)
		in2 := NewInjector(p, seed, nil)
		if (in1 == nil) != !p.Enabled() {
			t.Fatalf("injector nil-ness disagrees with Enabled()=%v", p.Enabled())
		}
		rep1, att1 := run(in1)
		rep2, att2 := run(in2)
		if att1 != att2 {
			t.Fatal("same plan+seed produced different attempt schedules")
		}
		if in1 != nil {
			limit := int64(p.MaxRetries) + 1
			if p.MaxRetries == 0 {
				limit = DefaultMaxRetries + 1
			}
			for i, a := range att1 {
				if a > limit {
					t.Fatalf("op %d took %d attempts, limit %d", i, a, limit)
				}
			}
			if !reflect.DeepEqual(withoutViolations(*rep1), withoutViolations(*rep2)) {
				t.Fatalf("same plan+seed produced different reports:\n%+v\n%+v", rep1, rep2)
			}
		}
		// Sorted, deduplicated schedule regardless of input order.
		if in1 != nil {
			sched := in1.PowerFailSchedule()
			for i := 1; i < len(sched); i++ {
				if sched[i] <= sched[i-1] {
					t.Fatalf("schedule not strictly increasing: %v", sched)
				}
			}
		}
	})
}

// withoutViolations strips the (slice-typed, incomparable) violation list so
// reports can be compared with ==.
func withoutViolations(r Report) Report {
	r.Violations = nil
	return r
}
