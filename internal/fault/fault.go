package fault

import (
	"fmt"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Op classifies the physical operation a transient fault applies to.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// String names the op ("read", "write", "erase").
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// FromTraceOp maps a trace operation to its fault class (deletes are
// metadata-only and never reach the media; they map to OpWrite but devices
// do not draw for them).
func FromTraceOp(op trace.Op) Op {
	if op == trace.Read {
		return OpRead
	}
	return OpWrite
}

// Report summarizes one run's injected faults and the device responses. It
// is deterministic for a given trace, plan, and seed.
type Report struct {
	// ReadFaults, WriteFaults, and EraseFaults count failed physical
	// attempts by operation class.
	ReadFaults  int64
	WriteFaults int64
	EraseFaults int64
	// Retries counts the extra physical attempts devices performed.
	Retries int64
	// Exhausted counts operations that failed even on their final allowed
	// attempt (the op completes anyway — a trace replay cannot branch — but
	// a real stack would have surfaced an I/O error here).
	Exhausted int64
	// BackoffTime is the cumulative simulated time spent backing off.
	BackoffTime units.Time
	// Remaps counts erase units retired to spares after wear-out.
	Remaps int64
	// SparesExhausted counts wear-out deaths past the spare pool: each one
	// degrades usable capacity (or, when capacity cannot shrink further,
	// keeps a worn unit in service).
	SparesExhausted int64
	// Reclaims counts retired erase units pressed back into service under
	// capacity pressure: live data grew past what the surviving units could
	// hold, so the controller reused the least-worn retired unit rather
	// than wedge its cleaner.
	Reclaims int64
	// PowerFailures counts injected power failures.
	PowerFailures int64
	// ReplayedBlocks counts blocks the recovery pass replayed from
	// battery-backed SRAM after power failures.
	ReplayedBlocks int64
	// LostWrites counts acknowledged-but-lost writes across power failures.
	// Non-zero only in configurations that volunteer for data loss (the
	// write-back DRAM ablation); anything else is an invariant violation.
	LostWrites int64
	// DeviceDeaths counts whole-device deaths (die_at_us / die_after_erases
	// in per-member plans).
	DeviceDeaths int64
	// LatentSeeded counts blocks silently poisoned at write time by
	// latent_error_rate; LatentFaults counts the subset that later surfaced
	// on a read and was scrubbed. Seeded ≥ surfaced — blocks overwritten or
	// never re-read keep their poison latent, exactly the silent-rot hazard
	// the model exists to expose.
	LatentSeeded int64
	LatentFaults int64
	// BacklogCarried counts interrupted cleaning jobs carried across power
	// failures (carry_cleaning_backlog); BacklogTime is the total recovery
	// time spent draining them.
	BacklogCarried int64
	BacklogTime    units.Time
	// Rebuilds counts mirror-member rebuilds after a device death;
	// RebuildTime is the total simulated time the rebuilds occupied.
	Rebuilds    int64
	RebuildTime units.Time
	// Violations lists recovery-invariant violations. Always empty unless
	// the simulator is broken: tests fail on non-empty, they do not log.
	Violations []string
}

// Merge folds another report into r: counters add, violations append.
// Core uses it to aggregate per-member injector reports under an array
// into the run's single Result.Faults.
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.ReadFaults += o.ReadFaults
	r.WriteFaults += o.WriteFaults
	r.EraseFaults += o.EraseFaults
	r.Retries += o.Retries
	r.Exhausted += o.Exhausted
	r.BackoffTime += o.BackoffTime
	r.Remaps += o.Remaps
	r.SparesExhausted += o.SparesExhausted
	r.Reclaims += o.Reclaims
	r.PowerFailures += o.PowerFailures
	r.ReplayedBlocks += o.ReplayedBlocks
	r.LostWrites += o.LostWrites
	r.DeviceDeaths += o.DeviceDeaths
	r.LatentSeeded += o.LatentSeeded
	r.LatentFaults += o.LatentFaults
	r.BacklogCarried += o.BacklogCarried
	r.BacklogTime += o.BacklogTime
	r.Rebuilds += o.Rebuilds
	r.RebuildTime += o.RebuildTime
	r.Violations = append(r.Violations, o.Violations...)
}

// Injector makes every fault decision for one run: deterministic draws from
// a seeded generator, observability emission, and the invariant ledger.
// A nil *Injector is valid and injects nothing; device hot paths guard with
// one nil check.
type Injector struct {
	plan  Plan
	state uint64 // splitmix64 state

	rep Report

	// latent holds the block indices silently poisoned at write time by
	// LatentErrorRate, awaiting a read to surface them. One injector serves
	// one seeding device (core builds one injector per array member), so a
	// bare block index is an unambiguous key. Allocated lazily on the first
	// seeded block.
	latent map[int64]struct{}

	// Observability (nil-safe no-ops without a scope).
	sc          *obs.Scope
	cInjected   *obs.Counter
	cRetries    *obs.Counter
	cExhausted  *obs.Counter
	cRemaps     *obs.Counter
	cReclaims   *obs.Counter
	cPowerFails *obs.Counter
	cReplayed   *obs.Counter
	cLost       *obs.Counter
	cDeaths     *obs.Counter
	cLatent     *obs.Counter
	cBacklog    *obs.Counter
	cRebuilds   *obs.Counter
}

// NewInjector builds an injector for the plan. A nil or do-nothing plan
// returns nil, which keeps the fault-free hot path byte-identical to a
// build without fault injection at all.
func NewInjector(p *Plan, seed int64, sc *obs.Scope) *Injector {
	if !p.Enabled() {
		return nil
	}
	in := &Injector{
		plan: *p,
		// Mix the seed so seeds 0 and 1 do not share a low-entropy prefix.
		state:       uint64(seed) ^ 0x6a09e667f3bcc909,
		sc:          sc,
		cInjected:   sc.Counter("fault.injected"),
		cRetries:    sc.Counter("fault.retries"),
		cExhausted:  sc.Counter("fault.exhausted"),
		cRemaps:     sc.Counter("fault.remaps"),
		cReclaims:   sc.Counter("fault.reclaims"),
		cPowerFails: sc.Counter("fault.power_failures"),
		cReplayed:   sc.Counter("fault.replayed_blocks"),
		cLost:       sc.Counter("fault.lost_writes"),
		cDeaths:     sc.Counter("fault.device_deaths"),
		cLatent:     sc.Counter("fault.latent_surfaced"),
		cBacklog:    sc.Counter("fault.backlog_carried"),
		cRebuilds:   sc.Counter("fault.rebuilds"),
	}
	return in
}

// next is splitmix64: a tiny, allocation-free generator whose sequence is
// fixed by this code, not by the Go release — the determinism guarantee
// must survive toolchain upgrades.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (in *Injector) float64() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// Enabled reports whether this injector injects anything (false for nil).
func (in *Injector) Enabled() bool { return in != nil }

// rate returns the transient error rate for the op class.
func (in *Injector) rate(op Op) float64 {
	switch op {
	case OpRead:
		return in.plan.ReadErrorRate
	case OpWrite:
		return in.plan.WriteErrorRate
	default:
		return in.plan.EraseErrorRate
	}
}

// Attempts draws the physical-attempt schedule for one device operation:
// how many attempts the device performs (≥ 1) and the total backoff delay
// between them. The device charges full service time and energy for every
// attempt and idle/standby energy for the backoff, so retries surface in
// latency and energy results. Nil-safe: a nil injector returns (1, 0).
func (in *Injector) Attempts(op Op, dev string, at units.Time) (attempts int64, backoff units.Time) {
	if in == nil {
		return 1, 0
	}
	rate := in.rate(op)
	if rate <= 0 {
		return 1, 0
	}
	limit := in.plan.maxRetries() + 1
	tracing := in.sc.Tracing()
	for a := 1; a <= limit; a++ {
		if in.float64() >= rate {
			return int64(a), backoff // attempt a succeeded
		}
		in.countFault(op)
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvFaultInjected, Dev: dev,
				Addr: int64(op), Size: int64(a)})
		}
		if a == limit {
			// Out of retries: the op is taken as completed so the replay can
			// continue, but the exhaustion is counted — a real stack would
			// have returned EIO here.
			in.rep.Exhausted++
			in.cExhausted.Inc()
			break
		}
		d := in.plan.backoff(a)
		backoff += d
		in.rep.Retries++
		in.rep.BackoffTime += d
		in.cRetries.Inc()
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRetryAttempt, Dev: dev,
				Addr: int64(op), Size: int64(a + 1), Dur: int64(d)})
		}
	}
	return int64(limit), backoff
}

// DeadAttempts charges the full failed retry schedule against a dead
// device: every attempt fails (no random draw — the device is gone), the
// op is counted exhausted, and the caller pays the whole exponential
// backoff. The striped array uses it for a dead member's share of an
// access. Nil-safe.
func (in *Injector) DeadAttempts(op Op, dev string, at units.Time) (attempts int64, backoff units.Time) {
	if in == nil {
		return 1, 0
	}
	limit := in.plan.maxRetries() + 1
	tracing := in.sc.Tracing()
	for a := 1; a <= limit; a++ {
		in.countFault(op)
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvFaultInjected, Dev: dev,
				Addr: int64(op), Size: int64(a)})
		}
		if a == limit {
			in.rep.Exhausted++
			in.cExhausted.Inc()
			break
		}
		d := in.plan.backoff(a)
		backoff += d
		in.rep.Retries++
		in.rep.BackoffTime += d
		in.cRetries.Inc()
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRetryAttempt, Dev: dev,
				Addr: int64(op), Size: int64(a + 1), Dur: int64(d)})
		}
	}
	return int64(limit), backoff
}

// countFault records one failed physical attempt.
func (in *Injector) countFault(op Op) {
	switch op {
	case OpRead:
		in.rep.ReadFaults++
	case OpWrite:
		in.rep.WriteFaults++
	default:
		in.rep.EraseFaults++
	}
	in.cInjected.Inc()
}

// WornOut reports whether an erase unit with the given cumulative erase
// count has crossed the plan's wear-out threshold. Nil-safe.
func (in *Injector) WornOut(erases int64) bool {
	return in != nil && in.plan.WearOutAfter > 0 && erases >= in.plan.WearOutAfter
}

// WearOutEvery returns the plan's wear-out threshold (0 = disabled).
// Devices with internal uniform wear leveling (the flash disk) retire one
// unit per WearOutEvery total erasures. Nil-safe.
func (in *Injector) WearOutEvery() int64 {
	if in == nil {
		return 0
	}
	return in.plan.WearOutAfter
}

// SpareUnits returns the plan's spare-unit provision. Nil-safe.
func (in *Injector) SpareUnits() int {
	if in == nil {
		return 0
	}
	return in.plan.SpareSegments
}

// RecordRemap records a worn-out erase unit retired to a spare. spares is
// the remaining spare count after the remap.
func (in *Injector) RecordRemap(dev string, unit, spares int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.Remaps++
	in.cRemaps.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRemap, Dev: dev,
			Addr: unit, Size: spares})
	}
}

// RecordSpareExhausted records a wear-out death past the spare pool.
func (in *Injector) RecordSpareExhausted(dev string, unit int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.SparesExhausted++
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRemap, Dev: dev,
			Addr: unit, Size: -1})
	}
}

// RecordReclaim records a retired erase unit pressed back into service
// because the surviving units could no longer hold the live data plus the
// cleaning reserve.
func (in *Injector) RecordReclaim(dev string, unit int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.Reclaims++
	in.cReclaims.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvReclaim, Dev: dev, Addr: unit})
	}
}

// PowerFailSchedule returns the planned power failures, sorted and
// deduplicated. Nil-safe.
func (in *Injector) PowerFailSchedule() []units.Time {
	if in == nil {
		return nil
	}
	return in.plan.schedule()
}

// RecordPowerFail records one injected power failure.
func (in *Injector) RecordPowerFail(at units.Time) {
	if in == nil {
		return
	}
	in.rep.PowerFailures++
	in.cPowerFails.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvPowerFail})
	}
}

// RecordReplay records the recovery pass replaying blocks from
// battery-backed SRAM after a power failure.
func (in *Injector) RecordReplay(dev string, blocks int64, at, dur units.Time) {
	if in == nil || blocks == 0 {
		return
	}
	in.rep.ReplayedBlocks += blocks
	in.cReplayed.Add(blocks)
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRecoveryReplayed, Dev: dev,
			Size: blocks, Dur: int64(dur)})
	}
}

// RecordLostWrites records acknowledged writes lost to a power failure.
func (in *Injector) RecordLostWrites(n int64, at units.Time) {
	if in == nil || n == 0 {
		return
	}
	in.rep.LostWrites += n
	in.cLost.Add(n)
}

// Violatef records a recovery-invariant violation. Violations mean the
// simulator itself is broken; tests fail on any.
func (in *Injector) Violatef(format string, args ...any) {
	if in == nil {
		return
	}
	in.rep.Violations = append(in.rep.Violations, fmt.Sprintf(format, args...))
}

// Report returns a copy of the accumulated fault report.
func (in *Injector) Report() *Report {
	if in == nil {
		return nil
	}
	rep := in.rep
	rep.Violations = append([]string(nil), in.rep.Violations...)
	return &rep
}

// DieAt returns the plan's scheduled device-death instant (0 = none).
// Nil-safe.
func (in *Injector) DieAt() units.Time {
	if in == nil {
		return 0
	}
	return units.Time(in.plan.DieAtUs)
}

// DieAfterErases returns the erase count at which the device dies
// (0 = no endurance death). Nil-safe.
func (in *Injector) DieAfterErases() int64 {
	if in == nil {
		return 0
	}
	return in.plan.DieAfterErases
}

// RecordDeath records a whole-device death. eraseDeath distinguishes an
// endurance death (die_after_erases) from a scheduled one (die_at_us).
func (in *Injector) RecordDeath(dev string, member int64, eraseDeath bool, at units.Time) {
	if in == nil {
		return
	}
	in.rep.DeviceDeaths++
	in.cDeaths.Inc()
	if in.sc.Tracing() {
		size := int64(0)
		if eraseDeath {
			size = 1
		}
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvDeviceDie, Dev: dev,
			Addr: member, Size: size})
	}
}

// SeedLatent draws a latent-fault decision for each block in [first, last]
// just written: with probability LatentErrorRate the block is silently
// poisoned, to surface on a later read. The write itself completes
// normally — that is the point. Nil-safe; free when the rate is zero.
func (in *Injector) SeedLatent(first, last int64) {
	if in == nil || in.plan.LatentErrorRate <= 0 {
		return
	}
	for b := first; b <= last; b++ {
		if in.float64() < in.plan.LatentErrorRate {
			if in.latent == nil {
				in.latent = make(map[int64]struct{})
			}
			in.latent[b] = struct{}{}
			in.rep.LatentSeeded++
		} else {
			// An overwrite of a previously poisoned block refreshes the
			// charge: the new program operation stores clean data.
			delete(in.latent, b)
		}
	}
}

// SurfaceLatent checks a read of blocks [first, last] against the latent
// set and scrubs any poisoned blocks it finds: each one is cleared,
// counted, and reported so the device can charge the scrub penalty
// (re-read + in-place rewrite) on this read's latency. Returns the number
// of blocks surfaced. Nil-safe; free when nothing was ever seeded.
func (in *Injector) SurfaceLatent(dev string, first, last int64, at, penalty units.Time) int64 {
	if in == nil || len(in.latent) == 0 {
		return 0
	}
	var n, firstHit int64
	firstHit = -1
	for b := first; b <= last; b++ {
		if _, ok := in.latent[b]; ok {
			delete(in.latent, b)
			if firstHit < 0 {
				firstHit = b
			}
			n++
		}
	}
	if n == 0 {
		return 0
	}
	in.rep.LatentFaults += n
	in.cLatent.Add(n)
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvFaultLatent, Dev: dev,
			Addr: firstHit, Size: n, Dur: int64(penalty * units.Time(n))})
	}
	return n
}

// LatentPending returns how many poisoned blocks are still waiting to
// surface — silent rot the workload has not yet re-read. Nil-safe.
func (in *Injector) LatentPending() int64 {
	if in == nil {
		return 0
	}
	return int64(len(in.latent))
}

// CarryBacklog reports whether the plan preserves in-flight cleaning
// state across power failures. Nil-safe.
func (in *Injector) CarryBacklog() bool {
	return in != nil && in.plan.CarryCleaningBacklog
}

// RecordBacklog records an interrupted cleaning job carried across a
// power failure and drained during recovery. victim is the cleaning
// victim segment, live the blocks still to relocate at the crash, drain
// the recovery time the drain added.
func (in *Injector) RecordBacklog(dev string, victim, live int64, at, drain units.Time) {
	if in == nil {
		return
	}
	in.rep.BacklogCarried++
	in.rep.BacklogTime += drain
	in.cBacklog.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCleaningBacklog, Dev: dev,
			Addr: victim, Size: live, Dur: int64(drain)})
	}
}

// RecordDegraded records a mirrored array degrading after a member death.
func (in *Injector) RecordDegraded(dev string, member, survivors int64, at units.Time) {
	if in == nil {
		return
	}
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvArrayDegraded, Dev: dev,
			Addr: member, Size: survivors})
	}
}

// RecordRebuild records a mirror rebuild onto a replacement member.
func (in *Injector) RecordRebuild(dev string, member, blocks int64, at, dur units.Time) {
	if in == nil {
		return
	}
	in.rep.Rebuilds++
	in.rep.RebuildTime += dur
	in.cRebuilds.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvArrayRebuild, Dev: dev,
			Addr: member, Size: blocks, Dur: int64(dur)})
	}
}
