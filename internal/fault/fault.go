package fault

import (
	"fmt"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Op classifies the physical operation a transient fault applies to.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// String names the op ("read", "write", "erase").
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// FromTraceOp maps a trace operation to its fault class (deletes are
// metadata-only and never reach the media; they map to OpWrite but devices
// do not draw for them).
func FromTraceOp(op trace.Op) Op {
	if op == trace.Read {
		return OpRead
	}
	return OpWrite
}

// Report summarizes one run's injected faults and the device responses. It
// is deterministic for a given trace, plan, and seed.
type Report struct {
	// ReadFaults, WriteFaults, and EraseFaults count failed physical
	// attempts by operation class.
	ReadFaults  int64
	WriteFaults int64
	EraseFaults int64
	// Retries counts the extra physical attempts devices performed.
	Retries int64
	// Exhausted counts operations that failed even on their final allowed
	// attempt (the op completes anyway — a trace replay cannot branch — but
	// a real stack would have surfaced an I/O error here).
	Exhausted int64
	// BackoffTime is the cumulative simulated time spent backing off.
	BackoffTime units.Time
	// Remaps counts erase units retired to spares after wear-out.
	Remaps int64
	// SparesExhausted counts wear-out deaths past the spare pool: each one
	// degrades usable capacity (or, when capacity cannot shrink further,
	// keeps a worn unit in service).
	SparesExhausted int64
	// Reclaims counts retired erase units pressed back into service under
	// capacity pressure: live data grew past what the surviving units could
	// hold, so the controller reused the least-worn retired unit rather
	// than wedge its cleaner.
	Reclaims int64
	// PowerFailures counts injected power failures.
	PowerFailures int64
	// ReplayedBlocks counts blocks the recovery pass replayed from
	// battery-backed SRAM after power failures.
	ReplayedBlocks int64
	// LostWrites counts acknowledged-but-lost writes across power failures.
	// Non-zero only in configurations that volunteer for data loss (the
	// write-back DRAM ablation); anything else is an invariant violation.
	LostWrites int64
	// Violations lists recovery-invariant violations. Always empty unless
	// the simulator is broken: tests fail on non-empty, they do not log.
	Violations []string
}

// Injector makes every fault decision for one run: deterministic draws from
// a seeded generator, observability emission, and the invariant ledger.
// A nil *Injector is valid and injects nothing; device hot paths guard with
// one nil check.
type Injector struct {
	plan  Plan
	state uint64 // splitmix64 state

	rep Report

	// Observability (nil-safe no-ops without a scope).
	sc          *obs.Scope
	cInjected   *obs.Counter
	cRetries    *obs.Counter
	cExhausted  *obs.Counter
	cRemaps     *obs.Counter
	cReclaims   *obs.Counter
	cPowerFails *obs.Counter
	cReplayed   *obs.Counter
	cLost       *obs.Counter
}

// NewInjector builds an injector for the plan. A nil or do-nothing plan
// returns nil, which keeps the fault-free hot path byte-identical to a
// build without fault injection at all.
func NewInjector(p *Plan, seed int64, sc *obs.Scope) *Injector {
	if !p.Enabled() {
		return nil
	}
	in := &Injector{
		plan: *p,
		// Mix the seed so seeds 0 and 1 do not share a low-entropy prefix.
		state:       uint64(seed) ^ 0x6a09e667f3bcc909,
		sc:          sc,
		cInjected:   sc.Counter("fault.injected"),
		cRetries:    sc.Counter("fault.retries"),
		cExhausted:  sc.Counter("fault.exhausted"),
		cRemaps:     sc.Counter("fault.remaps"),
		cReclaims:   sc.Counter("fault.reclaims"),
		cPowerFails: sc.Counter("fault.power_failures"),
		cReplayed:   sc.Counter("fault.replayed_blocks"),
		cLost:       sc.Counter("fault.lost_writes"),
	}
	return in
}

// next is splitmix64: a tiny, allocation-free generator whose sequence is
// fixed by this code, not by the Go release — the determinism guarantee
// must survive toolchain upgrades.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (in *Injector) float64() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// Enabled reports whether this injector injects anything (false for nil).
func (in *Injector) Enabled() bool { return in != nil }

// rate returns the transient error rate for the op class.
func (in *Injector) rate(op Op) float64 {
	switch op {
	case OpRead:
		return in.plan.ReadErrorRate
	case OpWrite:
		return in.plan.WriteErrorRate
	default:
		return in.plan.EraseErrorRate
	}
}

// Attempts draws the physical-attempt schedule for one device operation:
// how many attempts the device performs (≥ 1) and the total backoff delay
// between them. The device charges full service time and energy for every
// attempt and idle/standby energy for the backoff, so retries surface in
// latency and energy results. Nil-safe: a nil injector returns (1, 0).
func (in *Injector) Attempts(op Op, dev string, at units.Time) (attempts int64, backoff units.Time) {
	if in == nil {
		return 1, 0
	}
	rate := in.rate(op)
	if rate <= 0 {
		return 1, 0
	}
	limit := in.plan.maxRetries() + 1
	tracing := in.sc.Tracing()
	for a := 1; a <= limit; a++ {
		if in.float64() >= rate {
			return int64(a), backoff // attempt a succeeded
		}
		in.countFault(op)
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvFaultInjected, Dev: dev,
				Addr: int64(op), Size: int64(a)})
		}
		if a == limit {
			// Out of retries: the op is taken as completed so the replay can
			// continue, but the exhaustion is counted — a real stack would
			// have returned EIO here.
			in.rep.Exhausted++
			in.cExhausted.Inc()
			break
		}
		d := in.plan.backoff(a)
		backoff += d
		in.rep.Retries++
		in.rep.BackoffTime += d
		in.cRetries.Inc()
		if tracing {
			in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRetryAttempt, Dev: dev,
				Addr: int64(op), Size: int64(a + 1), Dur: int64(d)})
		}
	}
	return int64(limit), backoff
}

// countFault records one failed physical attempt.
func (in *Injector) countFault(op Op) {
	switch op {
	case OpRead:
		in.rep.ReadFaults++
	case OpWrite:
		in.rep.WriteFaults++
	default:
		in.rep.EraseFaults++
	}
	in.cInjected.Inc()
}

// WornOut reports whether an erase unit with the given cumulative erase
// count has crossed the plan's wear-out threshold. Nil-safe.
func (in *Injector) WornOut(erases int64) bool {
	return in != nil && in.plan.WearOutAfter > 0 && erases >= in.plan.WearOutAfter
}

// WearOutEvery returns the plan's wear-out threshold (0 = disabled).
// Devices with internal uniform wear leveling (the flash disk) retire one
// unit per WearOutEvery total erasures. Nil-safe.
func (in *Injector) WearOutEvery() int64 {
	if in == nil {
		return 0
	}
	return in.plan.WearOutAfter
}

// SpareUnits returns the plan's spare-unit provision. Nil-safe.
func (in *Injector) SpareUnits() int {
	if in == nil {
		return 0
	}
	return in.plan.SpareSegments
}

// RecordRemap records a worn-out erase unit retired to a spare. spares is
// the remaining spare count after the remap.
func (in *Injector) RecordRemap(dev string, unit, spares int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.Remaps++
	in.cRemaps.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRemap, Dev: dev,
			Addr: unit, Size: spares})
	}
}

// RecordSpareExhausted records a wear-out death past the spare pool.
func (in *Injector) RecordSpareExhausted(dev string, unit int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.SparesExhausted++
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRemap, Dev: dev,
			Addr: unit, Size: -1})
	}
}

// RecordReclaim records a retired erase unit pressed back into service
// because the surviving units could no longer hold the live data plus the
// cleaning reserve.
func (in *Injector) RecordReclaim(dev string, unit int64, at units.Time) {
	if in == nil {
		return
	}
	in.rep.Reclaims++
	in.cReclaims.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvReclaim, Dev: dev, Addr: unit})
	}
}

// PowerFailSchedule returns the planned power failures, sorted and
// deduplicated. Nil-safe.
func (in *Injector) PowerFailSchedule() []units.Time {
	if in == nil {
		return nil
	}
	return in.plan.schedule()
}

// RecordPowerFail records one injected power failure.
func (in *Injector) RecordPowerFail(at units.Time) {
	if in == nil {
		return
	}
	in.rep.PowerFailures++
	in.cPowerFails.Inc()
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvPowerFail})
	}
}

// RecordReplay records the recovery pass replaying blocks from
// battery-backed SRAM after a power failure.
func (in *Injector) RecordReplay(dev string, blocks int64, at, dur units.Time) {
	if in == nil || blocks == 0 {
		return
	}
	in.rep.ReplayedBlocks += blocks
	in.cReplayed.Add(blocks)
	if in.sc.Tracing() {
		in.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvRecoveryReplayed, Dev: dev,
			Size: blocks, Dur: int64(dur)})
	}
}

// RecordLostWrites records acknowledged writes lost to a power failure.
func (in *Injector) RecordLostWrites(n int64, at units.Time) {
	if in == nil || n == 0 {
		return
	}
	in.rep.LostWrites += n
	in.cLost.Add(n)
}

// Violatef records a recovery-invariant violation. Violations mean the
// simulator itself is broken; tests fail on any.
func (in *Injector) Violatef(format string, args ...any) {
	if in == nil {
		return
	}
	in.rep.Violations = append(in.rep.Violations, fmt.Sprintf(format, args...))
}

// Report returns a copy of the accumulated fault report.
func (in *Injector) Report() *Report {
	if in == nil {
		return nil
	}
	rep := in.rep
	rep.Violations = append([]string(nil), in.rep.Violations...)
	return &rep
}
