package fault

import (
	"strings"
	"testing"
)

func TestParsePlanSet(t *testing.T) {
	ps, err := ParsePlanSet([]byte(`{
		"m0": {"die_at_us": 5000000, "latent_error_rate": 0.01},
		"*":  {"read_error_rate": 0.02, "carry_cleaning_backlog": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.Member(0); got == nil || got.DieAtUs != 5_000_000 || got.LatentErrorRate != 0.01 {
		t.Errorf("Member(0) = %+v, want the explicit m0 plan", got)
	}
	if got := ps.Member(3); got == nil || got.ReadErrorRate != 0.02 || !got.CarryCleaningBacklog {
		t.Errorf("Member(3) = %+v, want the \"*\" default", got)
	}
	if err := ps.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestParsePlanSetRejects(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{"bad member key", `{"disk0": {}}`, "not a member name"},
		{"negative index", `{"m-1": {}}`, "not a member name"},
		{"padded index", `{"m01": {}}`, "not a member name"},
		{"bare index", `{"0": {}}`, "not a member name"},
		{"member power failure", `{"m0": {"power_fail_at_us": [1]}}`, "system-wide"},
		{"unknown member field", `{"m0": {"die_at_ms": 5}}`, "unknown field"},
		{"bad member plan", `{"m0": {"latent_error_rate": 2.0}}`, "latent_error_rate"},
		{"not an object", `["m0"]`, "parsing plan set"},
	}
	for _, c := range cases {
		_, err := ParsePlanSet([]byte(c.json))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: ParsePlanSet(%s) err = %v, want %q", c.name, c.json, err, c.wantErr)
		}
	}
}

func TestPlanSetMemberNil(t *testing.T) {
	var ps PlanSet
	if ps.Member(0) != nil {
		t.Error("nil set resolved a plan")
	}
	if err := ps.Validate(); err != nil {
		t.Errorf("nil set failed validation: %v", err)
	}
	only := PlanSet{"m1": {DieAtUs: 1}}
	if only.Member(0) != nil {
		t.Error("member without entry or default resolved a plan")
	}
}

func TestPlanSetValidateRejectsInjectedBadEntries(t *testing.T) {
	// Hand-built sets (not parsed) must still be caught by Validate.
	if err := (PlanSet{"weird": {}}).Validate(); err == nil {
		t.Error("bad key passed Validate")
	}
	if err := (PlanSet{"m0": {PowerFailAtUs: []int64{1}}}).Validate(); err == nil {
		t.Error("member power failure passed Validate")
	}
	if err := (PlanSet{"m0": {DieAtUs: -1}}).Validate(); err == nil {
		t.Error("negative die_at_us passed Validate")
	}
}

// TestMemberSeedIndependence: distinct members must draw from distinct
// seeds, and the derivation must be a pure function of (seed, index).
func TestMemberSeedIndependence(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 16; i++ {
		s := MemberSeed(99, i)
		if prev, dup := seen[s]; dup {
			t.Errorf("members %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if s != MemberSeed(99, i) {
			t.Errorf("MemberSeed(99, %d) not deterministic", i)
		}
	}
	if MemberSeed(1, 0) == MemberSeed(2, 0) {
		t.Error("different run seeds gave member 0 the same seed")
	}
}
