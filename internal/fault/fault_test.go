package fault

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mobilestorage/internal/obs"
	"mobilestorage/internal/units"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{
		"read_error_rate": 0.01,
		"write_error_rate": 0.05,
		"erase_error_rate": 0.1,
		"max_retries": 5,
		"backoff_us": 100,
		"max_backoff_us": 10000,
		"wear_out_after": 50,
		"spare_segments": 4,
		"power_fail_at_us": [1000000, 2000000]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.ReadErrorRate != 0.01 || p.WriteErrorRate != 0.05 || p.EraseErrorRate != 0.1 {
		t.Errorf("rates not decoded: %+v", p)
	}
	if p.MaxRetries != 5 || p.BackoffUs != 100 || p.MaxBackoffUs != 10000 {
		t.Errorf("retry knobs not decoded: %+v", p)
	}
	if p.WearOutAfter != 50 || p.SpareSegments != 4 || len(p.PowerFailAtUs) != 2 {
		t.Errorf("wear-out/power-fail not decoded: %+v", p)
	}
	if !p.Enabled() {
		t.Error("populated plan reports disabled")
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"raed_error_rate": 0.5}`},
		{"wrong unit suffix", `{"power_fail_at_ms": [1000]}`},
		{"unknown die field", `{"die_at_ms": 5}`},
		{"negative die at", `{"die_at_us": -1}`},
		{"negative die erases", `{"die_after_erases": -1}`},
		{"latent rate above 1", `{"latent_error_rate": 1.5}`},
		{"negative latent rate", `{"latent_error_rate": -0.5}`},
		{"rate above 1", `{"read_error_rate": 1.5}`},
		{"negative rate", `{"write_error_rate": -0.1}`},
		{"nan rate", `{"erase_error_rate": "x"}`},
		{"negative retries", `{"max_retries": -1}`},
		{"huge retries", `{"max_retries": 1000}`},
		{"negative backoff", `{"backoff_us": -5}`},
		{"negative max backoff", `{"max_backoff_us": -5}`},
		{"negative wearout", `{"wear_out_after": -1}`},
		{"negative spares", `{"spare_segments": -1}`},
		{"huge spares", `{"spare_segments": 1000}`},
		{"negative power fail", `{"power_fail_at_us": [-1]}`},
		{"not json", `{`},
	}
	for _, c := range cases {
		if _, err := ParsePlan([]byte(c.json)); err == nil {
			t.Errorf("%s: ParsePlan accepted %s", c.name, c.json)
		}
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	p := &Plan{ReadErrorRate: math.NaN()}
	if err := p.Validate(); err == nil {
		t.Error("NaN rate validated")
	}
}

func TestEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	if (&Plan{MaxRetries: 5, BackoffUs: 7}).Enabled() {
		t.Error("knobs-only plan enabled (injects nothing)")
	}
	for _, p := range []Plan{
		{ReadErrorRate: 0.1},
		{WriteErrorRate: 0.1},
		{EraseErrorRate: 0.1},
		{WearOutAfter: 10},
		{PowerFailAtUs: []int64{5}},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestNewInjectorNilForDisabledPlans(t *testing.T) {
	if in := NewInjector(nil, 1, nil); in != nil {
		t.Error("nil plan produced an injector")
	}
	if in := NewInjector(&Plan{}, 1, nil); in != nil {
		t.Error("zero plan produced an injector")
	}
	if in := NewInjector(&Plan{ReadErrorRate: 0.5}, 1, nil); in == nil {
		t.Error("enabled plan produced no injector")
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
	if att, backoff := in.Attempts(OpWrite, "dev", 0); att != 1 || backoff != 0 {
		t.Errorf("nil Attempts = (%d, %v), want (1, 0)", att, backoff)
	}
	if in.WornOut(1 << 40) {
		t.Error("nil injector wears out")
	}
	if in.WearOutEvery() != 0 || in.SpareUnits() != 0 {
		t.Error("nil injector has wear-out config")
	}
	if in.PowerFailSchedule() != nil {
		t.Error("nil injector has a power-fail schedule")
	}
	// None of these may panic.
	in.RecordRemap("dev", 0, 0, 0)
	in.RecordSpareExhausted("dev", 0, 0)
	in.RecordPowerFail(0)
	in.RecordReplay("dev", 3, 0, 0)
	in.RecordLostWrites(2, 0)
	in.Violatef("nope %d", 1)
	if in.Report() != nil {
		t.Error("nil injector has a report")
	}
}

func TestAttemptsNoDrawsAtZeroRate(t *testing.T) {
	// With only the erase rate set, read/write attempts must not consume
	// random draws: enabling erase faults must leave the read/write draw
	// sequence (and thus all other injection decisions) unchanged.
	p := &Plan{EraseErrorRate: 0.5}
	a := NewInjector(p, 42, nil)
	b := NewInjector(p, 42, nil)
	for i := 0; i < 100; i++ {
		a.Attempts(OpRead, "dev", 0)
		a.Attempts(OpWrite, "dev", 0)
	}
	// a drew nothing extra, so the next erase draws must match b's exactly.
	for i := 0; i < 50; i++ {
		ea, ba := a.Attempts(OpErase, "dev", 0)
		eb, bb := b.Attempts(OpErase, "dev", 0)
		if ea != eb || ba != bb {
			t.Fatalf("draw %d diverged: (%d,%v) vs (%d,%v)", i, ea, ba, eb, bb)
		}
	}
}

func TestAttemptsDeterministicPerSeed(t *testing.T) {
	p := &Plan{ReadErrorRate: 0.3, WriteErrorRate: 0.2, EraseErrorRate: 0.4}
	a := NewInjector(p, 7, nil)
	b := NewInjector(p, 7, nil)
	c := NewInjector(p, 8, nil)
	ops := []Op{OpRead, OpWrite, OpErase}
	diverged := false
	for i := 0; i < 3000; i++ {
		op := ops[i%3]
		aa, ab := a.Attempts(op, "dev", units.Time(i))
		ba, bb := b.Attempts(op, "dev", units.Time(i))
		ca, _ := c.Attempts(op, "dev", units.Time(i))
		if aa != ba || ab != bb {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if aa != ca {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical attempt sequences")
	}
	ra, rb := a.Report(), b.Report()
	if ra.ReadFaults != rb.ReadFaults || ra.Retries != rb.Retries ||
		ra.Exhausted != rb.Exhausted || ra.BackoffTime != rb.BackoffTime {
		t.Error("same-seed reports differ")
	}
	if ra.Retries == 0 || ra.Exhausted == 0 {
		t.Errorf("30%% rates over 3000 ops produced no retries/exhaustions: %+v", ra)
	}
}

func TestAttemptsBounded(t *testing.T) {
	// Rate 1 forces every attempt to fail: the attempt count must equal
	// MaxRetries+1 exactly and the op must be counted exhausted.
	p := &Plan{WriteErrorRate: 1, MaxRetries: 2, BackoffUs: 10, MaxBackoffUs: 1000}
	in := NewInjector(p, 1, nil)
	att, backoff := in.Attempts(OpWrite, "dev", 0)
	if att != 3 {
		t.Errorf("attempts = %d, want 3 (MaxRetries+1)", att)
	}
	// Backoff: 10 before attempt 2, 20 before attempt 3.
	if backoff != 30 {
		t.Errorf("backoff = %v, want 30µs", backoff)
	}
	rep := in.Report()
	if rep.WriteFaults != 3 || rep.Retries != 2 || rep.Exhausted != 1 {
		t.Errorf("report = %+v, want 3 faults / 2 retries / 1 exhausted", rep)
	}
}

func TestBackoffExponentialAndCapped(t *testing.T) {
	p := &Plan{BackoffUs: 100, MaxBackoffUs: 350}
	want := []units.Time{100, 200, 350, 350, 350}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Defaults kick in for zero fields.
	zero := &Plan{}
	if got := zero.backoff(1); got != DefaultBackoffUs {
		t.Errorf("default backoff = %v, want %v", got, units.Time(DefaultBackoffUs))
	}
	if got := zero.backoff(30); got != DefaultMaxBackoffUs {
		t.Errorf("deep backoff = %v, want cap %v", got, units.Time(DefaultMaxBackoffUs))
	}
}

func TestScheduleSortedDeduped(t *testing.T) {
	p := &Plan{PowerFailAtUs: []int64{500, 100, 500, 300, 100}}
	in := NewInjector(p, 0, nil)
	got := in.PowerFailSchedule()
	want := []units.Time{100, 300, 500}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
}

func TestWornOut(t *testing.T) {
	in := NewInjector(&Plan{WearOutAfter: 100}, 0, nil)
	if in.WornOut(99) {
		t.Error("worn at 99 < 100")
	}
	if !in.WornOut(100) {
		t.Error("not worn at threshold")
	}
	noWear := NewInjector(&Plan{ReadErrorRate: 0.5}, 0, nil)
	if noWear.WornOut(1 << 40) {
		t.Error("wear-out fires with WearOutAfter=0")
	}
}

func TestReportIsACopy(t *testing.T) {
	in := NewInjector(&Plan{ReadErrorRate: 1, MaxRetries: 1}, 0, nil)
	in.Violatef("first")
	rep := in.Report()
	in.Violatef("second")
	if len(rep.Violations) != 1 || rep.Violations[0] != "first" {
		t.Errorf("report aliases the live ledger: %v", rep.Violations)
	}
	if got := in.Report(); len(got.Violations) != 2 {
		t.Errorf("ledger lost a violation: %v", got.Violations)
	}
}

func TestInjectorEmitsEventsAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewNDJSONSink(&buf)
	sc := obs.NewScope(reg, sink)
	in := NewInjector(&Plan{WriteErrorRate: 1, MaxRetries: 1, PowerFailAtUs: []int64{10}}, 3, sc)

	in.Attempts(OpWrite, "dev", 5)
	in.RecordPowerFail(10)
	in.RecordRemap("dev", 7, 2, 11)
	in.RecordSpareExhausted("dev", 8, 12)
	in.RecordReclaim("dev", 8, 13)
	in.RecordReplay("dev", 4, 13, 100)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	m := reg.Counters()
	for name, want := range map[string]int64{
		"fault.injected":        2, // both attempts fail at rate 1
		"fault.retries":         1,
		"fault.exhausted":       1,
		"fault.remaps":          1,
		"fault.reclaims":        1,
		"fault.power_failures":  1,
		"fault.replayed_blocks": 4,
	} {
		if m[name] != want {
			t.Errorf("counter %s = %d, want %d", name, m[name], want)
		}
	}
	out := buf.String()
	for _, kind := range []string{
		obs.EvFaultInjected, obs.EvRetryAttempt, obs.EvPowerFail,
		obs.EvRemap, obs.EvReclaim, obs.EvRecoveryReplayed,
	} {
		if !strings.Contains(out, `"kind":"`+kind+`"`) {
			t.Errorf("event stream missing %s:\n%s", kind, out)
		}
	}
}
