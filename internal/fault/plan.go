// Package fault implements deterministic, seeded fault injection for the
// storage stack: transient read/write/erase errors with bounded retry,
// wear-out thresholds that turn erase units into bad blocks, and scheduled
// power failures with crash/recovery semantics (§5.2's endurance limits and
// §5.5's battery-backed SRAM made operational).
//
// A declarative Plan plus a seed fully determines every injection decision:
// the same trace, plan, and seed always reproduce the same Result. The
// Injector centralizes the random draws, the observability counters and
// events, and the invariant ledger, so device models stay small.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"mobilestorage/internal/units"
)

// Plan is the declarative fault schedule for one run. The zero value
// injects nothing. Rates are per physical attempt, in [0, 1].
type Plan struct {
	// ReadErrorRate, WriteErrorRate, and EraseErrorRate are the transient
	// failure probabilities of one physical read, write (program), or erase
	// attempt. A failed attempt is retried after an exponential backoff, up
	// to MaxRetries extra attempts; every attempt charges full service time,
	// energy, and (for program/erase) wear.
	ReadErrorRate  float64 `json:"read_error_rate,omitempty"`
	WriteErrorRate float64 `json:"write_error_rate,omitempty"`
	EraseErrorRate float64 `json:"erase_error_rate,omitempty"`

	// MaxRetries bounds the extra attempts after a transient failure
	// (total physical attempts ≤ MaxRetries+1). Zero means the default of 3.
	// After the final attempt the operation is taken as completed — a trace
	// replay cannot branch on failure — but the exhaustion is counted and
	// reported.
	MaxRetries int `json:"max_retries,omitempty"`

	// BackoffUs is the backoff before the second attempt, in simulated
	// microseconds; it doubles per subsequent attempt and is capped by
	// MaxBackoffUs. Zero means the default of 500 µs.
	BackoffUs int64 `json:"backoff_us,omitempty"`
	// MaxBackoffUs caps the exponential backoff. Zero means 100 ms.
	MaxBackoffUs int64 `json:"max_backoff_us,omitempty"`

	// WearOutAfter, when positive, is the erase count at which an erase
	// unit (flash-card segment, flash-disk sector) becomes a bad block. Bad
	// blocks are remapped to spares; once spares run out, usable capacity
	// degrades. Zero disables wear-out.
	WearOutAfter int64 `json:"wear_out_after,omitempty"`
	// SpareSegments is how many spare erase units absorb wear-out deaths
	// before capacity degradation begins. Flash-card configurations with a
	// derived capacity get this many extra segments provisioned up front.
	SpareSegments int `json:"spare_segments,omitempty"`

	// PowerFailAtUs schedules power failures at the given instants of
	// simulated time (microseconds). At each point, volatile state (the
	// DRAM cache, in-flight flash-card cleaning) is dropped, battery-backed
	// SRAM survives, and a recovery pass replays/repairs before the trace
	// resumes.
	PowerFailAtUs []int64 `json:"power_fail_at_us,omitempty"`

	// DieAtUs, when positive, kills the device outright at that instant of
	// simulated time: a whole-device fault domain, distinct from the
	// system-wide power failures above. Inside an array the surviving
	// members keep serving (mirror: degraded reads; stripe: bounded
	// retry + exhaustion on the dead member's share). Only meaningful for
	// per-member plans in a PlanSet.
	DieAtUs int64 `json:"die_at_us,omitempty"`
	// DieAfterErases, when positive, kills the device once its cumulative
	// erase count reaches the threshold — endurance death rather than
	// scheduled death.
	DieAfterErases int64 `json:"die_after_erases,omitempty"`

	// LatentErrorRate is the probability that one written block is seeded
	// with a latent read-disturb/retention fault: the write completes
	// normally, but a later read of that block surfaces the fault and pays
	// a scrub (re-read + in-place rewrite) before returning. Models the
	// silent, workload-dependent retention degradation of Choi & Jung.
	LatentErrorRate float64 `json:"latent_error_rate,omitempty"`

	// CarryCleaningBacklog, when true, preserves in-flight flash-card
	// cleaning work across a power failure: recovery re-scans, then drains
	// the interrupted cleaning job before serving, so post-recovery latency
	// reflects the backlog. False (the default) keeps the historical
	// semantics — the crash discards in-flight cleaning state atomically.
	CarryCleaningBacklog bool `json:"carry_cleaning_backlog,omitempty"`
}

// Defaults used when the corresponding Plan field is zero.
const (
	DefaultMaxRetries   = 3
	DefaultBackoffUs    = 500
	DefaultMaxBackoffUs = 100_000
	// maxMaxRetries bounds the retry budget so a hostile plan cannot make a
	// single operation arbitrarily expensive.
	maxMaxRetries = 16
	// maxSpareSegments bounds the extra capacity a plan can provision.
	maxSpareSegments = 64
)

// ParsePlan decodes and validates a JSON plan. Unknown fields are rejected
// so a typo'd rate name fails loudly instead of injecting nothing.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate reports plan errors: out-of-range rates, negative times, or
// budgets beyond the supported bounds.
func (p *Plan) Validate() error {
	check := func(name string, rate float64) error {
		// NaN fails both comparisons' complements, so test the valid range
		// directly.
		if !(rate >= 0 && rate <= 1) {
			return fmt.Errorf("fault: %s %v out of [0, 1]", name, rate)
		}
		return nil
	}
	if err := check("read_error_rate", p.ReadErrorRate); err != nil {
		return err
	}
	if err := check("write_error_rate", p.WriteErrorRate); err != nil {
		return err
	}
	if err := check("erase_error_rate", p.EraseErrorRate); err != nil {
		return err
	}
	if p.MaxRetries < 0 || p.MaxRetries > maxMaxRetries {
		return fmt.Errorf("fault: max_retries %d out of [0, %d]", p.MaxRetries, maxMaxRetries)
	}
	if p.BackoffUs < 0 {
		return fmt.Errorf("fault: backoff_us %d negative", p.BackoffUs)
	}
	if p.MaxBackoffUs < 0 {
		return fmt.Errorf("fault: max_backoff_us %d negative", p.MaxBackoffUs)
	}
	if p.WearOutAfter < 0 {
		return fmt.Errorf("fault: wear_out_after %d negative", p.WearOutAfter)
	}
	if p.SpareSegments < 0 || p.SpareSegments > maxSpareSegments {
		return fmt.Errorf("fault: spare_segments %d out of [0, %d]", p.SpareSegments, maxSpareSegments)
	}
	for _, t := range p.PowerFailAtUs {
		if t < 0 {
			return fmt.Errorf("fault: power_fail_at_us %d negative", t)
		}
	}
	if p.DieAtUs < 0 {
		return fmt.Errorf("fault: die_at_us %d negative", p.DieAtUs)
	}
	if p.DieAfterErases < 0 {
		return fmt.Errorf("fault: die_after_erases %d negative", p.DieAfterErases)
	}
	if err := check("latent_error_rate", p.LatentErrorRate); err != nil {
		return err
	}
	return nil
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.ReadErrorRate > 0 || p.WriteErrorRate > 0 || p.EraseErrorRate > 0 ||
		p.WearOutAfter > 0 || len(p.PowerFailAtUs) > 0 ||
		p.DieAtUs > 0 || p.DieAfterErases > 0 || p.LatentErrorRate > 0 ||
		p.CarryCleaningBacklog
}

// maxRetries resolves the effective retry budget.
func (p *Plan) maxRetries() int {
	if p.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// backoff returns the simulated-time backoff before attempt n+1 after n
// failed attempts: exponential from BackoffUs, capped at MaxBackoffUs.
func (p *Plan) backoff(failed int) units.Time {
	base := p.BackoffUs
	if base == 0 {
		base = DefaultBackoffUs
	}
	limit := p.MaxBackoffUs
	if limit == 0 {
		limit = DefaultMaxBackoffUs
	}
	d := base
	for i := 1; i < failed; i++ {
		d *= 2
		if d >= limit {
			d = limit
			break
		}
	}
	if d > limit {
		d = limit
	}
	return units.Time(d)
}

// schedule returns the power-failure instants sorted and deduplicated.
func (p *Plan) schedule() []units.Time {
	if len(p.PowerFailAtUs) == 0 {
		return nil
	}
	out := make([]units.Time, 0, len(p.PowerFailAtUs))
	for _, t := range p.PowerFailAtUs {
		out = append(out, units.Time(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, t := range out[1:] {
		if t != dedup[len(dedup)-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}
