package flashcard

// Policy selects which closed segment to clean next. Policies see the card
// read-only and must return a segment in the closed state with at least one
// invalid block (cleaning a fully-live segment reclaims nothing), or
// noSegment when no segment qualifies.
//
// The paper discusses greedy utilization-based selection (what MFFS uses)
// and notes that richer metrics exist (eNVy's locality-aware cleaning);
// CostBenefitPolicy and FIFOPolicy support the ablation experiments.
type Policy interface {
	SelectVictim(c *Card) int32
	Name() string
}

// closedVictims iterates closed segments with at least one invalid block,
// invoking fn with the segment ID, live count, and age rank.
func closedVictims(c *Card, fn func(seg int32, live int32, fillSeq int64)) {
	for s := int32(0); s < c.nseg; s++ {
		if c.segState[s] != segClosed {
			continue
		}
		if c.segLive[s] >= c.blocksPerSeg {
			continue // fully live: nothing to reclaim
		}
		fn(s, c.segLive[s], c.segFillSeq[s])
	}
}

// GreedyPolicy picks the segment with the lowest utilization (the most
// reclaimable space), i.e. the approach MFFS takes (§2): "picking the next
// segment by finding the one with the lowest utilization".
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy" }

// SelectVictim implements Policy. The scan is written as a direct loop
// (not via closedVictims) because it runs on the cleaner's critical path;
// the candidate filter and first-lowest-live selection are identical.
func (GreedyPolicy) SelectVictim(c *Card) int32 {
	best := noSegment
	bestLive := c.blocksPerSeg
	states, lives := c.segState, c.segLive
	for s := int32(0); s < c.nseg; s++ {
		if states[s] != segClosed {
			continue
		}
		if live := lives[s]; live < bestLive {
			best, bestLive = s, live
		}
	}
	return best
}

// CostBenefitPolicy weighs reclaimed space against copying cost and segment
// age, after Sprite LFS and eNVy (§2, §6): maximize free·age/(1+live),
// where free and live are block counts and age is how long ago the segment
// was filled (in log-sequence units). Old, mostly-invalid segments win;
// recently filled segments get time for more of their blocks to die.
type CostBenefitPolicy struct{}

// Name implements Policy.
func (CostBenefitPolicy) Name() string { return "cost-benefit" }

// SelectVictim implements Policy.
func (CostBenefitPolicy) SelectVictim(c *Card) int32 {
	best := noSegment
	bestScore := -1.0
	closedVictims(c, func(s, live int32, fillSeq int64) {
		free := float64(c.blocksPerSeg - live)
		age := float64(c.fillSeq - fillSeq + 1)
		score := free * age / float64(1+live)
		if score > bestScore {
			best, bestScore = s, score
		}
	})
	return best
}

// FIFOPolicy cleans the oldest filled segment regardless of utilization.
// It is the simplest wear-leveling-friendly policy and serves as the
// ablation baseline: every segment is erased equally often, at the price of
// copying more live data.
type FIFOPolicy struct{}

// Name implements Policy.
func (FIFOPolicy) Name() string { return "fifo" }

// SelectVictim implements Policy.
func (FIFOPolicy) SelectVictim(c *Card) int32 {
	best := noSegment
	bestSeq := int64(0)
	closedVictims(c, func(s, _ int32, fillSeq int64) {
		if best == noSegment || fillSeq < bestSeq {
			best, bestSeq = s, fillSeq
		}
	})
	return best
}

// Policies returns the available cleaning policies keyed by name.
func Policies() map[string]Policy {
	return map[string]Policy{
		(GreedyPolicy{}).Name():      GreedyPolicy{},
		(CostBenefitPolicy{}).Name(): CostBenefitPolicy{},
		(FIFOPolicy{}).Name():        FIFOPolicy{},
	}
}
