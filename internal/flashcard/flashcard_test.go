package flashcard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// params returns a small round-number card: 8 KB segments of 1 KB blocks,
// 100 ms erases, so scenarios stay tractable.
func params() device.FlashCardParams {
	return device.FlashCardParams{
		Name:            "toy",
		Source:          device.Datasheet,
		ReadKBs:         8192,
		WriteKBs:        1024,
		EraseTime:       100 * units.Millisecond,
		SegmentSize:     8 * units.KB,
		ActiveW:         0.5,
		EraseW:          0.2,
		StandbyW:        0.001,
		EnduranceCycles: 1000,
	}
}

func newCard(t *testing.T, segments int, opts ...Option) *Card {
	t.Helper()
	c, err := New(params(), units.Bytes(segments)*8*units.KB, units.KB, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wr(at units.Time, addr, size units.Bytes) device.Request {
	return device.Request{Time: at, Op: trace.Write, Addr: addr, Size: size}
}

func TestWriteTime(t *testing.T) {
	c := newCard(t, 8)
	// 1 KB at 1024 KB/s ≈ 977 µs, no stall on an empty card.
	done := c.Access(wr(0, 0, units.KB))
	if done != 977 {
		t.Errorf("write completion = %v µs, want 977", done)
	}
	if c.Stalls() != 0 {
		t.Error("write stalled on an empty card")
	}
}

func TestReadTime(t *testing.T) {
	c := newCard(t, 8)
	c.Access(wr(0, 0, units.KB))
	start := units.Second
	done := c.Access(device.Request{Time: start, Op: trace.Read, Addr: 0, Size: 8 * units.KB})
	want := units.TransferTime(8*units.KB, 8192)
	if done-start != want {
		t.Errorf("read service = %v, want %v", done-start, want)
	}
}

func TestPrefillBounds(t *testing.T) {
	c := newCard(t, 8) // 64 KB total, 2 segments reserved
	if err := c.Prefill(48 * units.KB); err != nil {
		t.Errorf("prefill within bounds failed: %v", err)
	}
	c2 := newCard(t, 8)
	if err := c2.Prefill(56 * units.KB); err == nil {
		t.Error("prefill into the reserve accepted")
	}
	if err := c.Prefill(units.KB); err == nil {
		t.Error("second prefill accepted")
	}
	if got := c.LiveBlocks(); got != 48 {
		t.Errorf("live blocks = %d, want 48", got)
	}
	if u := c.Utilization(); math.Abs(u-0.75) > 1e-9 {
		t.Errorf("utilization = %g, want 0.75", u)
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	c := newCard(t, 8)
	c.Access(wr(0, 0, 4*units.KB))
	if got := c.LiveBlocks(); got != 4 {
		t.Fatalf("live = %d, want 4", got)
	}
	// Overwriting the same logical blocks must not grow liveness.
	c.Access(wr(units.Second, 0, 4*units.KB))
	if got := c.LiveBlocks(); got != 4 {
		t.Errorf("live after overwrite = %d, want 4", got)
	}
	if got := c.HostBlocks(); got != 8 {
		t.Errorf("host blocks = %d, want 8", got)
	}
}

func TestDeleteInvalidates(t *testing.T) {
	c := newCard(t, 8)
	c.Access(wr(0, 0, 4*units.KB))
	c.Access(device.Request{Time: units.Second, Op: trace.Delete, Addr: 0, Size: 4 * units.KB})
	if got := c.LiveBlocks(); got != 0 {
		t.Errorf("live after delete = %d, want 0", got)
	}
}

func TestBackgroundCleaningDuringIdle(t *testing.T) {
	c := newCard(t, 4) // 32 KB
	// Rewrite the same 8 KB three times: two wholly-invalid segments pile
	// up and the erased pool drops below the reserve.
	c.Access(wr(0, 0, 8*units.KB))
	c.Access(wr(units.Second, 0, 8*units.KB))
	c.Access(wr(2*units.Second, 0, 8*units.KB))
	if c.TotalErases() != 0 {
		t.Fatal("erased before any idle time")
	}
	// Idle long enough for cleaning (no copies needed: victims dead).
	c.Idle(10 * units.Second)
	if c.TotalErases() == 0 {
		t.Errorf("no erases after idle")
	}
	if c.CopiedBlocks() != 0 {
		t.Errorf("copied %d blocks from fully dead victims", c.CopiedBlocks())
	}
	if j := c.Meter().StateJ(energy.StateErase); j <= 0 {
		t.Error("no erase energy charged")
	}
}

func TestSynchronousStallWhenNoSpace(t *testing.T) {
	c := newCard(t, 4, WithOnDemandCleaning())
	// Rewrite the same 8 KB until the erased pool is exhausted; the write
	// that finds no erased segment must wait for an on-demand clean.
	var clock units.Time
	for i := 0; i < 6; i++ {
		clock = c.Access(wr(clock, 0, 8*units.KB))
	}
	if c.Stalls() == 0 {
		t.Fatalf("no stall despite exhausted space (last completion %v)", clock)
	}
	if c.StallTime() < c.Params().EraseTime {
		t.Errorf("stall %v shorter than one erase", c.StallTime())
	}
	if c.TotalErases() == 0 {
		t.Error("on-demand cleaning did not erase")
	}
}

func TestCleanerPreservesLiveData(t *testing.T) {
	c := newCard(t, 6)
	if err := c.Prefill(24 * units.KB); err != nil {
		t.Fatal(err)
	}
	var clock units.Time
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		clock += 200 * units.Millisecond
		addr := units.Bytes(rng.Intn(24)) * units.KB
		clock = c.Access(wr(clock, addr, units.KB))
	}
	if got := c.LiveBlocks(); got != 24 {
		t.Errorf("live blocks = %d, want 24 (cleaning lost or duplicated data)", got)
	}
}

// TestInvariantsUnderRandomOps is the main property test: after any random
// mix of writes, deletes, and idle periods, the card's accounting is
// consistent:
//   - sum of segment live counts equals the number of live logical blocks;
//   - no segment holds more live blocks than its capacity;
//   - erase counts are non-negative and sum to TotalErases;
//   - utilization never exceeds 1.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(params(), 10*8*units.KB, units.KB)
		if err != nil {
			return false
		}
		if err := c.Prefill(40 * units.KB); err != nil {
			return false
		}
		live := map[int64]bool{}
		for b := int64(0); b < 40; b++ {
			live[b] = true
		}
		var clock units.Time
		for i := 0; i < 300; i++ {
			clock += units.Time(rng.Intn(400)) * units.Millisecond
			blk := int64(rng.Intn(40))
			n := rng.Intn(4) + 1
			switch rng.Intn(5) {
			case 0: // delete a range
				c.Access(device.Request{Time: clock, Op: trace.Delete,
					Addr: units.Bytes(blk) * units.KB, Size: units.Bytes(n) * units.KB})
				for j := int64(0); j < int64(n) && blk+j < 40; j++ {
					live[blk+j] = false
				}
			default: // write a range
				if blk+int64(n) > 40 {
					n = int(40 - blk)
				}
				clock = c.Access(wr(clock, units.Bytes(blk)*units.KB, units.Bytes(n)*units.KB))
				for j := int64(0); j < int64(n); j++ {
					live[blk+j] = true
				}
			}
		}
		var wantLive int64
		for _, ok := range live {
			if ok {
				wantLive++
			}
		}
		if c.LiveBlocks() != wantLive {
			return false
		}
		var eraseSum int64
		for _, e := range c.EraseCounts() {
			if e < 0 {
				return false
			}
			eraseSum += e
		}
		return eraseSum == c.TotalErases() && c.Utilization() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHighUtilizationCostsMore(t *testing.T) {
	run := func(prefill units.Bytes) (stalls int64, erases int64) {
		c, err := New(params(), 32*8*units.KB, units.KB) // 256 KB card
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(prefill); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		blocks := int64(prefill / units.KB)
		var clock units.Time
		for i := 0; i < 2000; i++ {
			clock += 5 * units.Millisecond // dense: little idle for cleaning
			addr := units.Bytes(rng.Int63n(blocks)) * units.KB
			clock = c.Access(wr(clock, addr, units.KB))
		}
		return c.Stalls(), c.TotalErases()
	}
	lowStalls, lowErases := run(102 * units.KB)   // 40%
	highStalls, highErases := run(238 * units.KB) // 95%
	if highErases <= lowErases {
		t.Errorf("erases at 95%% (%d) not above 40%% (%d)", highErases, lowErases)
	}
	if highStalls < lowStalls {
		t.Errorf("stalls at 95%% (%d) below 40%% (%d)", highStalls, lowStalls)
	}
}

func TestPolicies(t *testing.T) {
	pols := Policies()
	for _, name := range []string{"greedy", "cost-benefit", "fifo"} {
		if _, ok := pols[name]; !ok {
			t.Errorf("policy %q missing", name)
		}
	}
	// All policies must keep data intact under churn.
	for name, pol := range pols {
		c, err := New(params(), 10*8*units.KB, units.KB, WithPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(40 * units.KB); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		var clock units.Time
		for i := 0; i < 1000; i++ {
			clock += 150 * units.Millisecond
			clock = c.Access(wr(clock, units.Bytes(rng.Intn(40))*units.KB, units.KB))
		}
		if got := c.LiveBlocks(); got != 40 {
			t.Errorf("%s: live = %d, want 40", name, got)
		}
		if c.TotalErases() == 0 {
			t.Errorf("%s: no cleaning happened", name)
		}
	}
}

func TestFIFOWearLevelsBetterThanGreedy(t *testing.T) {
	maxWear := func(pol Policy) int64 {
		c, _ := New(params(), 12*8*units.KB, units.KB, WithPolicy(pol))
		if err := c.Prefill(80 * units.KB); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		var clock units.Time
		for i := 0; i < 4000; i++ {
			clock += 120 * units.Millisecond
			// Skewed: 90% of writes to 10% of blocks.
			var blk int
			if rng.Float64() < 0.9 {
				blk = rng.Intn(8)
			} else {
				blk = 8 + rng.Intn(72)
			}
			clock = c.Access(wr(clock, units.Bytes(blk)*units.KB, units.KB))
		}
		var mx int64
		for _, e := range c.EraseCounts() {
			if e > mx {
				mx = e
			}
		}
		return mx
	}
	greedy := maxWear(GreedyPolicy{})
	fifo := maxWear(FIFOPolicy{})
	if fifo > greedy {
		t.Errorf("FIFO max wear %d worse than greedy %d", fifo, greedy)
	}
}

func TestMeanVictimLiveAndHistogram(t *testing.T) {
	c := newCard(t, 6)
	c.Prefill(24 * units.KB)
	var clock units.Time
	for i := 0; i < 200; i++ {
		clock += 300 * units.Millisecond
		clock = c.Access(wr(clock, units.Bytes(i%24)*units.KB, units.KB))
	}
	if c.TotalErases() > 0 && c.MeanVictimLive() < 0 {
		t.Error("negative mean victim live")
	}
	h := c.LiveHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total == 0 {
		t.Error("live histogram empty despite closed segments")
	}
}

func TestConstructionErrors(t *testing.T) {
	p := params()
	if _, err := New(p, 2*8*units.KB, units.KB); err == nil {
		t.Error("too-small card accepted")
	}
	if _, err := New(p, units.MB, 3*units.KB); err == nil {
		t.Error("non-dividing block size accepted")
	}
	if _, err := New(p, units.MB, 16*units.KB); err == nil {
		t.Error("block size above segment size accepted")
	}
	p.WriteKBs = 0
	if _, err := New(p, units.MB, units.KB); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestName(t *testing.T) {
	c := newCard(t, 8)
	if c.Name() != "toy-datasheet" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Capacity() != 64*units.KB {
		t.Errorf("Capacity = %v", c.Capacity())
	}
	if c.EnduranceCycles() != 1000 {
		t.Errorf("EnduranceCycles = %d", c.EnduranceCycles())
	}
}

func TestWearLevelingBoundsSpread(t *testing.T) {
	run := func(opts ...Option) (maxWear, minWear int64, copies int64) {
		c, err := New(params(), 16*8*units.KB, units.KB, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(100 * units.KB); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		var clock units.Time
		for i := 0; i < 6000; i++ {
			clock += 120 * units.Millisecond
			// Heavy skew: almost all writes to 8 of 100 blocks; the rest of
			// the card is cold and, without leveling, never erased.
			blk := rng.Intn(8)
			if rng.Float64() < 0.05 {
				blk = 8 + rng.Intn(92)
			}
			clock = c.Access(wr(clock, units.Bytes(blk)*units.KB, units.KB))
		}
		counts := c.EraseCounts()
		minWear = counts[0]
		for _, e := range counts {
			if e > maxWear {
				maxWear = e
			}
			if e < minWear {
				minWear = e
			}
		}
		return maxWear, minWear, c.CopiedBlocks()
	}
	maxPlain, minPlain, copiesPlain := run()
	maxLevel, minLevel, copiesLevel := run(WithWearLeveling(4))
	if spreadP, spreadL := maxPlain-minPlain, maxLevel-minLevel; spreadL >= spreadP {
		t.Errorf("leveling spread %d not below plain %d", spreadL, spreadP)
	}
	if copiesLevel <= copiesPlain {
		t.Errorf("leveling copied %d blocks, plain %d — leveling should cost copies", copiesLevel, copiesPlain)
	}
	// Leveling preserves data like everything else.
	_ = minLevel
}
