package flashcard

import (
	"math"
	"testing"

	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/units"
)

// churn overwrites the same blocks repeatedly with widely spaced writes so
// every card runs the identical logical workload (cleaning is driven purely
// by space pressure, not timing).
func churn(c *Card, rounds int) {
	at := units.Time(0)
	for r := 0; r < rounds; r++ {
		for b := units.Bytes(0); b < 16; b++ {
			at = c.Access(wr(at, b*units.KB, units.KB)) + units.Minute
		}
	}
}

// TestEraseRetryChargesWearPerPulse pins the satellite fix on the flash
// card: a failed erase pulse stresses the cells like a successful one, so
// each clean's segment-erase count and erase energy scale with the physical
// pulse count, not with the logical erase.
func TestEraseRetryChargesWearPerPulse(t *testing.T) {
	base := newCard(t, 4, WithOnDemandCleaning())
	churn(base, 20)
	baseErases := base.TotalErases()
	baseEraseJ := base.Meter().StateJ(energy.StateErase)
	if baseErases == 0 {
		t.Fatal("baseline churn never cleaned")
	}

	in := fault.NewInjector(&fault.Plan{
		EraseErrorRate: 1, MaxRetries: 1, BackoffUs: 500, MaxBackoffUs: 500,
	}, 1, nil)
	c := newCard(t, 4, WithOnDemandCleaning(), WithFaults(in))
	churn(c, 20)

	// Rate 1 with MaxRetries 1 forces exactly 2 pulses per erase.
	const pulses = 2
	if got := c.TotalErases(); got != pulses*baseErases {
		t.Errorf("erase count = %d, want %d (wear per physical pulse)", got, pulses*baseErases)
	}
	// Erase energy: (2 pulses × EraseTime + 500µs backoff) × EraseW per
	// clean, against EraseTime × EraseW per baseline clean.
	cleans := baseErases
	wantJ := float64(cleans) * (pulses*float64(params().EraseTime) + 500) * 1e-6 * params().EraseW
	if math.Abs(c.Meter().StateJ(energy.StateErase)-wantJ) > 1e-9 {
		t.Errorf("erase energy = %g J, want %g J", c.Meter().StateJ(energy.StateErase), wantJ)
	}
	if wantBase := float64(cleans) * float64(params().EraseTime) * 1e-6 * params().EraseW; math.Abs(baseEraseJ-wantBase) > 1e-9 {
		t.Errorf("baseline erase energy = %g J, want %g J", baseEraseJ, wantBase)
	}
	rep := in.Report()
	if rep.EraseFaults != pulses*cleans || rep.Exhausted != cleans {
		t.Errorf("report = %+v, want %d erase faults / %d exhausted", rep, pulses*cleans, cleans)
	}
}

// TestWriteRetryChargesPerAttempt pins host-write retry accounting: each
// failed program repeats the whole transfer at active power, with standby
// power across the backoff.
func TestWriteRetryChargesPerAttempt(t *testing.T) {
	base := newCard(t, 8)
	baseDone := base.Access(wr(0, 0, units.KB))

	in := fault.NewInjector(&fault.Plan{
		WriteErrorRate: 1, MaxRetries: 2, BackoffUs: 100, MaxBackoffUs: 200,
	}, 1, nil)
	c := newCard(t, 8, WithFaults(in))
	done := c.Access(wr(0, 0, units.KB))

	// 3 attempts with 100+200 µs backoff between them.
	if want := baseDone*3 + 300; done != want {
		t.Errorf("retried write completion = %v, want %v", done, want)
	}
	if got, want := c.Meter().StateJ(energy.StateActive), 3*base.Meter().StateJ(energy.StateActive); math.Abs(got-want) > 1e-12 {
		t.Errorf("active energy = %g J, want %g J", got, want)
	}
}

// TestWearOutRetiresSegments drives a card past its wear-out threshold and
// verifies bad-block retirement: spares absorb the first deaths, capacity
// degrades after, the card keeps working, and bookkeeping stays consistent.
func TestWearOutRetiresSegments(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{WearOutAfter: 3, SpareSegments: 2}, 1, nil)
	// Provision the plan's spares on top of the baseline card size, as the
	// core's capacity derivation does.
	c, err := New(params(), units.Bytes(6+2)*8*units.KB, units.KB,
		WithOnDemandCleaning(), WithFaults(in))
	if err != nil {
		t.Fatal(err)
	}
	churn(c, 60)
	if c.BadSegments() == 0 {
		t.Fatal("churn never retired a segment")
	}
	rep := in.Report()
	if rep.Remaps == 0 {
		t.Error("no remaps recorded")
	}
	if rep.Remaps+rep.SparesExhausted < c.BadSegments() {
		t.Errorf("remaps (%d) + exhausted (%d) below retirements (%d)",
			rep.Remaps, rep.SparesExhausted, c.BadSegments())
	}
	if rep.Remaps > 2 {
		t.Errorf("%d remaps from only 2 spares", rep.Remaps)
	}
	if c.SpareSegmentsLeft() != 2-rep.Remaps {
		t.Errorf("spares left = %d, want %d", c.SpareSegmentsLeft(), 2-rep.Remaps)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Errorf("card inconsistent after wear-out: %v", err)
	}
	// The card must still accept writes at degraded capacity.
	c.Access(wr(1000*units.Minute, 0, units.KB))
}

// TestRetirementNeverStrandsLiveData fills a card almost completely, then
// wears it out: retirement must stop at the floor where the survivors still
// hold the live data plus the cleaning reserve, never wedging the card.
func TestRetirementNeverStrandsLiveData(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{WearOutAfter: 2}, 1, nil)
	c := newCard(t, 8, WithOnDemandCleaning(), WithFaults(in))
	// 3 segments of live data on an 8-segment card.
	if err := c.Prefill(24 * units.KB); err != nil {
		t.Fatal(err)
	}
	at := units.Time(0)
	for r := 0; r < 100; r++ {
		for b := units.Bytes(0); b < 24; b++ {
			at = c.Access(wr(at, b*units.KB, units.KB)) + units.Minute
		}
	}
	usable := int64(c.nseg) - c.BadSegments()
	if usable < reserveSegments+2 {
		t.Errorf("retirement broke the structural floor: %d usable segments", usable)
	}
	if c.LiveBlocks() != 24 {
		t.Errorf("live blocks = %d, want 24", c.LiveBlocks())
	}
	if err := c.CheckConsistency(); err != nil {
		t.Errorf("card inconsistent: %v", err)
	}
	if rep := in.Report(); rep.SparesExhausted == 0 {
		t.Error("no capacity-exhaustion events recorded despite zero spares")
	}
}

// TestReclaimUnderCapacityPressure pins the overcommit valve: retirement
// passes canRetire while the live set is small, then the workload grows its
// live set past what the surviving segments can sustain. The card must
// press retired segments back into service (Report.Reclaims) instead of
// wedging with no erased space and no cleanable victim.
func TestReclaimUnderCapacityPressure(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{WearOutAfter: 1}, 1, nil)
	c := newCard(t, 8, WithOnDemandCleaning(), WithFaults(in))

	// Phase 1: one segment of live data, churned until retirement stalls at
	// the capacity floor for THIS live set.
	at := units.Time(0)
	for r := 0; r < 40; r++ {
		for b := units.Bytes(0); b < 8; b++ {
			at = c.Access(wr(at, b*units.KB, units.KB)) + units.Minute
		}
	}
	retired := c.BadSegments()
	if retired == 0 {
		t.Fatal("phase 1 never retired a segment")
	}

	// Phase 2: grow the live set to 42 blocks. With bad retired segments the
	// sustainable live set under the 2-segment cleaning reserve is
	// (8-bad-2)*8 = 48-8·bad blocks, below 42 for any bad ≥ 1 — the squeeze
	// is guaranteed whatever phase 1 managed to retire.
	for b := units.Bytes(8); b < 42; b++ {
		at = c.Access(wr(at, b*units.KB, units.KB)) + units.Minute
	}
	// Churn the grown set so cleaning runs at the new pressure.
	for r := 0; r < 10; r++ {
		for b := units.Bytes(0); b < 42; b++ {
			at = c.Access(wr(at, b*units.KB, units.KB)) + units.Minute
		}
	}

	rep := in.Report()
	if rep.Reclaims == 0 {
		t.Error("overcommitted card never reclaimed a retired segment")
	}
	if c.BadSegments() >= retired {
		t.Errorf("bad segments %d → %d: reclaim did not return capacity", retired, c.BadSegments())
	}
	if got := c.LiveBlocks(); got != 42 {
		t.Errorf("live blocks = %d, want 42", got)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Errorf("card inconsistent after reclaim: %v", err)
	}
}

// TestCrashDropsCleaningJobSafely starts a clean, crashes mid-job, and
// verifies the copy-then-erase atomicity: no live block is lost, the victim
// is still intact (the erase never happened), and recovery passes the
// consistency check.
func TestCrashDropsCleaningJobSafely(t *testing.T) {
	in := fault.NewInjector(&fault.Plan{PowerFailAtUs: []int64{1}}, 1, nil)
	c := newCard(t, 4, WithFaults(in))
	churn(c, 3)
	live := c.LiveBlocks()

	// Nudge the background cleaner into a job and let it run partway.
	at := 1000 * units.Minute
	c.Idle(at)
	c.Idle(at + 10*units.Millisecond) // EraseTime is 100 ms: job cannot finish
	if c.job == nil {
		// The cleaner may have satisfied its reserve; force a job.
		c.startJob(at + 10*units.Millisecond)
	}
	if c.job != nil && c.job.remaining == 0 {
		t.Fatal("test setup: job already complete")
	}
	crashAt := at + 20*units.Millisecond
	c.Crash(crashAt)
	if c.job != nil {
		t.Error("in-flight cleaning job survived the crash")
	}
	done := c.Recover(crashAt)
	if done <= crashAt {
		t.Error("recovery scan took no time")
	}
	if got := c.LiveBlocks(); got != live {
		t.Errorf("live blocks %d → %d across crash", live, got)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Errorf("card inconsistent after crash: %v", err)
	}
	if v := in.Report().Violations; len(v) != 0 {
		t.Errorf("recovery violations: %v", v)
	}
}
