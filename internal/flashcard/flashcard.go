// Package flashcard models a byte-addressable flash memory card (Intel
// Series 2 / Series 2+) managed as a log-structured store, the way the
// Microsoft Flash File System and eNVy do (§2):
//
//   - reads proceed at memory speed from wherever the block lives;
//   - writes append to the active segment; overwriting a logical block
//     invalidates its previous copy;
//   - one segment is filled completely before a new one is opened (§4.2);
//   - a background cleaner keeps erased segments in reserve, copying live
//     data out of the lowest-utilization victim and erasing it (1.6 s per
//     segment on the Series 2, regardless of the amount of data);
//   - cleaning runs in the gaps between host operations and is suspended
//     during host I/O; a write stalls only when no erased space exists, in
//     which case it absorbs the remaining cleaning time synchronously;
//   - cleaner relocations go to their own log head, separate from fresh
//     host writes. Survivor blocks are long-lived by definition, so mixing
//     them with hot data would drag every segment toward the same mediocre
//     utilization (the LFS hot/cold mixing problem; eNVy [24] separates
//     them for the same reason).
//
// Per-segment erase counts are tracked for the §5.2 endurance analysis.
package flashcard

import (
	"fmt"
	"math/bits"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

const (
	// noSegment marks a logical block with no live copy and an unset log
	// head.
	noSegment = int32(-1)
	// reserveSegments is how many erased segments the cleaner tries to keep
	// available: one for the host to open plus one so cleaning copies always
	// have somewhere to land (the classic LFS reserve). The paper's
	// simulator "attempts to keep at least one segment erased at all
	// times" (§4.2).
	reserveSegments = 2
)

// segState tracks the lifecycle of one segment.
type segState uint8

const (
	segErased segState = iota // erased, ready to open
	segActive                 // accepting appends (host or cleaner head)
	segClosed                 // filled; cleanable
	segBad                    // retired after wear-out; never reused
)

// logHead identifies which append stream a block enters.
type logHead uint8

const (
	hostHead logHead = iota
	cleanHead
	numHeads
)

// Card is a flash memory card device model.
type Card struct {
	p         device.FlashCardParams
	meter     *energy.Meter
	capacity  units.Bytes
	blockSize units.Bytes
	policy    Policy
	onDemand  bool  // clean only when a write needs space
	wearLevel int64 // static wear-leveling imbalance threshold; 0 = off
	lastLevel bool  // previous job was a leveling move (alternation guard)

	blocksPerSeg int32
	nseg         int32

	// blockShift replaces the per-access division by blockSize with a shift
	// when the block size is a power of two (it always is in practice).
	blockShift uint8
	shiftOK    bool

	// blockSeg[b] is the segment holding logical block b's live copy,
	// stored as segment+1 so the zero value means "no live copy": New can
	// rely on make's zeroing instead of a second full fill pass (the array
	// covers every block on the card, and Figure 4 constructs a fresh card
	// per sweep point). Readers subtract 1, which maps empty entries to
	// noSegment (-1) so existing comparisons hold unchanged.
	blockSeg []int32
	// segLive[s] counts live blocks in segment s.
	segLive []int32
	// segState[s] is the lifecycle state of segment s.
	segState []segState
	// segArena[s*blocksPerSeg : s*blocksPerSeg+segFill[s]] lists logical
	// blocks appended to segment s; entries are stale when blockSeg no
	// longer points back. A flat arena plus fill counts keeps the
	// per-append bookkeeping to two int32 stores.
	segArena []int32
	segFill  []int32
	// segErases[s] counts erasures of segment s (endurance, §5.2).
	segErases []int64
	// segFillSeq[s] is the log sequence number at which s was opened,
	// used by the FIFO and cost-benefit cleaning policies.
	segFillSeq []int64
	fillSeq    int64

	// active[h] is the segment accepting appends for log head h, or
	// noSegment; activeFree[h] counts its remaining slots.
	active     [numHeads]int32
	activeFree [numHeads]int32
	erased     []int32

	// job points at jobStore while a clean is in progress, nil otherwise;
	// the inline store keeps the per-clean record off the heap.
	job      *cleanJob
	jobStore cleanJob

	// stateGen counts mutations that could change cleaning-victim selection
	// (segment closes, closed-segment live counts, the erased pool);
	// noVictimAtGen caches that startJob's scan came up empty at that
	// generation, so back-to-back scans over unchanged state are skipped.
	// The memo is bypassed under wear leveling, whose selection alternates
	// statefully (startJob mutates lastLevel even when state is unchanged).
	stateGen      int64
	noVictimAtGen int64

	// Memoized transfer times for the card's fixed datasheet bandwidths;
	// results are bit-identical to calling units.TransferTime directly.
	// copyWorkMemo[n] caches the read+write copy cost of relocating n live
	// blocks (0 = not yet computed; n=0 is trivially zero work), indexed by
	// block count because cleaning copies are always whole blocks.
	readMemo     units.TransferMemo
	writeMemo    units.TransferMemo
	copyKBs      float64
	copyWorkMemo []units.Time

	lastUpdate  units.Time
	busyUntil   units.Time
	bgBusyUntil units.Time

	// Counters for experiment reporting.
	hostWrites    int64 // host blocks written
	copyWrites    int64 // cleaner blocks copied
	totalErases   int64
	stallTime     units.Time // write time spent waiting for erased space
	stalls        int64
	victimLiveSum int64      // sum of live counts over all cleaning victims
	cleanTime     units.Time // cumulative copy+erase time
	hostTime      units.Time // cumulative host transfer time
	prefilled     bool

	// Observability (nil-safe no-ops without a scope).
	sc        *obs.Scope
	evName    string
	cErases   *obs.Counter
	cCleans   *obs.Counter
	cCopied   *obs.Counter
	cHostBlks *obs.Counter
	cStalls   *obs.Counter
	hCleanMs  *obs.Histogram

	// Fault injection: inj draws transient errors and wear-out decisions;
	// sparesLeft counts the plan's spare segments not yet consumed by
	// remaps; badSegs counts segments retired as bad blocks. Nil inj
	// disables all of it at one check per site.
	inj        *fault.Injector
	sparesLeft int64
	badSegs    int32

	// carried holds a cleaning job preserved across a power failure when
	// the plan sets carry_cleaning_backlog; Recover drains it before the
	// card serves again, so post-recovery latency reflects the backlog.
	carried *cleanJob
}

// cleanJob is an in-progress cleaning of one victim segment.
// The job copies first, then erases: while remaining > eraseWork the work
// being done is copying.
type cleanJob struct {
	victim    int32
	remaining units.Time
	total     units.Time // full job cost, for event reporting
	// eraseWork is the erase phase's duration: EraseTime per physical erase
	// pulse plus retry backoff (EraseTime exactly when no faults fire).
	eraseWork units.Time
	// erasePulses is how many physical erase pulses the job performs; wear
	// is charged per pulse (a failed erase stresses the cells regardless).
	erasePulses int64
}

// Option configures a Card.
type Option func(*Card)

// WithPolicy selects the cleaning victim-selection policy. The default is
// GreedyPolicy (lowest utilization first), which is what MFFS uses (§2).
func WithPolicy(p Policy) Option {
	return func(c *Card) { c.policy = p }
}

// WithOnDemandCleaning disables background cleaning: segments are cleaned
// only when a write needs space, synchronously (the "on-demand" cleaning
// policy of §4.2's parameter list).
func WithOnDemandCleaning() Option {
	return func(c *Card) { c.onDemand = true }
}

// WithWearLeveling enables static wear leveling (§2: "it is possible to
// spread the load over the flash memory to avoid burning out particular
// areas"): when the erase-count spread between the most- and least-worn
// segments exceeds threshold, the cleaner forces the least-worn closed
// segment into circulation — relocating its (usually cold) data to the log
// head so the barely-worn cells join the erased pool and absorb future hot
// writes. Costs extra copies; bounds the wear spread.
func WithWearLeveling(threshold int64) Option {
	return func(c *Card) { c.wearLevel = threshold }
}

// WithFaults attaches a fault injector: transient read/write/erase errors
// are retried with full per-attempt time, energy, and wear accounting;
// segments crossing the wear-out threshold are retired as bad blocks,
// consuming the plan's spare segments first and degrading usable capacity
// after. A nil injector is free.
func WithFaults(in *fault.Injector) Option {
	return func(c *Card) { c.inj = in }
}

// WithScope attaches an observability scope: erase/clean/copy/stall
// counters and events. A nil scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(c *Card) {
		c.sc = sc
		c.cErases = sc.Counter("flashcard.erases")
		c.cCleans = sc.Counter("flashcard.cleans")
		c.cCopied = sc.Counter("flashcard.copied_blocks")
		c.cHostBlks = sc.Counter("flashcard.host_blocks")
		c.cStalls = sc.Counter("flashcard.stalls")
		c.hCleanMs = sc.Histogram("flashcard.clean_ms", obs.LogBuckets(1e-3, 1e7))
	}
}

// New builds a flash card with the given capacity and logical block size.
// Capacity is rounded down to a whole number of segments.
func New(p device.FlashCardParams, capacity units.Bytes, blockSize units.Bytes, opts ...Option) (*Card, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 || blockSize > p.SegmentSize {
		return nil, fmt.Errorf("flashcard %s: block size %v must be in (0, %v]", p.Name, blockSize, p.SegmentSize)
	}
	if p.SegmentSize%blockSize != 0 {
		return nil, fmt.Errorf("flashcard %s: segment size %v not a multiple of block size %v", p.Name, p.SegmentSize, blockSize)
	}
	nseg := int32(capacity / p.SegmentSize)
	if nseg < reserveSegments+2 {
		return nil, fmt.Errorf("flashcard %s: capacity %v yields %d segments, need ≥ %d",
			p.Name, capacity, nseg, reserveSegments+2)
	}
	c := &Card{
		p:            p,
		meter:        energy.NewMeter(),
		capacity:     units.Bytes(nseg) * p.SegmentSize,
		blockSize:    blockSize,
		policy:       GreedyPolicy{},
		blocksPerSeg: int32(p.SegmentSize / blockSize),
		nseg:         nseg,
		segLive:      make([]int32, nseg),
		segState:     make([]segState, nseg),
		segFill:      make([]int32, nseg),
		segErases:    make([]int64, nseg),
		segFillSeq:   make([]int64, nseg),
		active:       [numHeads]int32{noSegment, noSegment},
	}
	if blockSize&(blockSize-1) == 0 {
		c.shiftOK = true
		c.blockShift = uint8(bits.TrailingZeros64(uint64(blockSize)))
	}
	c.blockSeg = make([]int32, c.capacity/blockSize)
	c.segArena = make([]int32, int(nseg)*int(c.blocksPerSeg))
	c.erased = make([]int32, nseg)
	for i := range c.erased {
		c.erased[i] = int32(i)
	}
	c.readMemo = units.NewTransferMemo(p.ReadKBs)
	c.writeMemo = units.NewTransferMemo(p.WriteKBs)
	c.noVictimAtGen = -1
	c.copyKBs = p.CopyKBs
	if c.copyKBs == 0 {
		c.copyKBs = p.WriteKBs
	}
	c.copyWorkMemo = make([]units.Time, c.blocksPerSeg+1)
	for _, o := range opts {
		o(c)
	}
	c.evName = c.Name()
	c.sparesLeft = int64(c.inj.SpareUnits())
	return c, nil
}

// Prefill populates the card with the given amount of live data, placed
// sequentially from logical address zero, without charging time or energy:
// it models the preallocation the paper performs before each simulation to
// set the storage utilization (§4.2). Prefill must be called before any
// Access.
func (c *Card) Prefill(data units.Bytes) error {
	if c.prefilled || c.hostWrites > 0 || c.copyWrites > 0 {
		return fmt.Errorf("flashcard %s: Prefill after Access or a previous Prefill", c.p.Name)
	}
	c.prefilled = true
	blocks := int64(units.CeilDiv(data, c.blockSize))
	maxBlocks := int64(c.nseg-reserveSegments) * int64(c.blocksPerSeg)
	if blocks > maxBlocks {
		return fmt.Errorf("flashcard %s: prefill %v exceeds usable capacity (%v of %v)",
			c.p.Name, data, units.Bytes(maxBlocks)*c.blockSize, c.capacity)
	}
	// Bulk-fill whole segments: state-identical to appending each block in
	// order through appendBlock (which this replaced), but without the
	// per-block bookkeeping — Figure 4 prefills 32 MB for every point.
	bps := int64(c.blocksPerSeg)
	for b := int64(0); b < blocks; {
		n := blocks - b
		if n > bps {
			n = bps
		}
		c.openSegment(hostHead)
		s := c.active[hostHead]
		base := int64(s) * bps
		for i := int64(0); i < n; i++ {
			c.segArena[base+i] = int32(b + i)
			c.blockSeg[b+i] = s + 1
		}
		c.segFill[s] = int32(n)
		c.segLive[s] = int32(n)
		c.activeFree[hostHead] = int32(bps - n)
		if c.activeFree[hostHead] == 0 {
			c.segState[s] = segClosed
			c.active[hostHead] = noSegment
		}
		b += n
	}
	return nil
}

// Name implements device.Device.
func (c *Card) Name() string { return fmt.Sprintf("%s-%s", c.p.Name, c.p.Source) }

// Meter implements device.Device.
func (c *Card) Meter() *energy.Meter { return c.meter }

// Params returns the device parameters.
func (c *Card) Params() device.FlashCardParams { return c.p }

// Capacity returns the usable capacity (whole segments).
func (c *Card) Capacity() units.Bytes { return c.capacity }

// LiveBlocks returns the number of live logical blocks on the card.
func (c *Card) LiveBlocks() int64 {
	var live int64
	for _, l := range c.segLive {
		live += int64(l)
	}
	return live
}

// Utilization returns the live fraction of the card.
func (c *Card) Utilization() float64 {
	return float64(c.LiveBlocks()) / float64(int64(c.nseg)*int64(c.blocksPerSeg))
}

// TotalErases returns the total number of segment erasures performed.
func (c *Card) TotalErases() int64 { return c.totalErases }

// CopiedBlocks returns the number of blocks relocated by the cleaner;
// (hostWrites+copyWrites)/hostWrites is the cleaning write amplification.
func (c *Card) CopiedBlocks() int64 { return c.copyWrites }

// HostBlocks returns the number of blocks written by the host.
func (c *Card) HostBlocks() int64 { return c.hostWrites }

// StallTime returns cumulative write time spent waiting for erased space.
func (c *Card) StallTime() units.Time { return c.stallTime }

// Stalls returns the number of writes that waited for erased space.
func (c *Card) Stalls() int64 { return c.stalls }

// MeanVictimLive returns the average live-block count of cleaning victims,
// a direct measure of cleaning cost (0 with no cleans yet).
func (c *Card) MeanVictimLive() float64 {
	if c.totalErases == 0 {
		return 0
	}
	return float64(c.victimLiveSum) / float64(c.totalErases)
}

// LiveHistogram buckets closed segments by live fraction into deciles
// (index 10 = exactly full). Useful for studying cleaner behavior.
func (c *Card) LiveHistogram() [11]int {
	var h [11]int
	for s := int32(0); s < c.nseg; s++ {
		if c.segState[s] != segClosed {
			continue
		}
		d := int(float64(c.segLive[s]) / float64(c.blocksPerSeg) * 10)
		if d > 10 {
			d = 10
		}
		h[d]++
	}
	return h
}

// EraseCounts implements device.WearReporter.
func (c *Card) EraseCounts() []int64 {
	out := make([]int64, len(c.segErases))
	copy(out, c.segErases)
	return out
}

// EnduranceCycles implements device.WearReporter.
func (c *Card) EnduranceCycles() int64 { return c.p.EnduranceCycles }

// Idle implements device.Device: accounts standby energy and advances
// background cleaning through the idle gap.
func (c *Card) Idle(now units.Time) { c.advance(now) }

// Finish implements device.Device.
func (c *Card) Finish(now units.Time) { c.advance(now) }

// Access implements device.Device.
func (c *Card) Access(req device.Request) units.Time {
	if req.Op == trace.Delete {
		c.invalidate(req.Addr, req.Size)
		return req.Time
	}
	start := units.Max(req.Time, c.busyUntil)
	c.advance(start)

	var service units.Time
	switch req.Op {
	case trace.Read:
		service = c.readService(req.Size, start) + c.scrubLatent(req.Addr, req.Size, start)
		c.hostTime += service
	case trace.Write:
		service = c.write(req.Addr, req.Size, start)
	}
	completion := start + service
	// A background operation may already have advanced the energy clock
	// past this completion; never move it backwards.
	if completion > c.lastUpdate {
		c.lastUpdate = completion
	}
	c.busyUntil = completion
	return completion
}

// Background performs an operation off the host's critical path (cache
// installs in the hybrid architecture): it charges the same time and
// energy as Access and mutates the same block state, but does not delay
// subsequent host operations. Returns the completion time.
func (c *Card) Background(req device.Request) units.Time {
	if req.Op == trace.Delete {
		c.invalidate(req.Addr, req.Size)
		return req.Time
	}
	start := units.Max(req.Time, c.bgBusyUntil)
	c.advance(start)
	var service units.Time
	switch req.Op {
	case trace.Read:
		service = c.readService(req.Size, start) + c.scrubLatent(req.Addr, req.Size, start)
	case trace.Write:
		service = c.write(req.Addr, req.Size, start)
	}
	completion := start + service
	if completion > c.lastUpdate {
		c.lastUpdate = completion
	}
	c.bgBusyUntil = completion
	return completion
}

// write appends the blocks of [addr, addr+size) to the host log and returns
// the service time, including any synchronous wait for erased space. start
// is the arrival instant, used to timestamp events.
func (c *Card) write(addr, size units.Bytes, start units.Time) units.Time {
	first, last := c.blockRange(addr, size)
	stall := c.appendHostRun(first, last, start)
	c.cHostBlks.Add(last - first + 1)
	transfer := c.writeMemo.Time(size)
	c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, transfer)
	c.hostTime += transfer // stall time is cleaning work, counted there
	if c.inj != nil {
		// A failed program repeats the whole transfer: full time and energy
		// per physical attempt, standby power across the backoff waits.
		if att, backoff := c.inj.Attempts(fault.OpWrite, c.evName, start); att > 1 {
			extra := transfer * units.Time(att-1)
			c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, extra)
			c.meter.AccrueSlot(energy.SlotStandby, c.p.StandbyW, backoff)
			c.hostTime += extra
			transfer += extra + backoff
		}
		// The program may silently seed retention/read-disturb rot that only
		// a later read will surface (free when the plan has no latent rate).
		c.inj.SeedLatent(first, last)
	}
	if stall > 0 {
		c.stallTime += stall
		c.stalls++
		c.cStalls.Inc()
		if c.sc.Tracing() {
			c.sc.Emit(obs.Event{T: int64(start), Kind: obs.EvCardStall, Dev: c.evName, Dur: int64(stall)})
		}
	}
	return stall + transfer
}

// readService computes one read transfer's service time including any
// injected transient-fault retries, charging active energy per physical
// attempt and standby energy for the backoff waits.
func (c *Card) readService(size units.Bytes, start units.Time) units.Time {
	service := c.readMemo.Time(size)
	c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, service)
	if c.inj != nil {
		if att, backoff := c.inj.Attempts(fault.OpRead, c.evName, start); att > 1 {
			extra := service * units.Time(att-1)
			c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, extra)
			c.meter.AccrueSlot(energy.SlotStandby, c.p.StandbyW, backoff)
			service += extra + backoff
		}
	}
	return service
}

// scrubLatent surfaces any latent retention/read-disturb faults seeded on
// the blocks just read: each poisoned block pays a re-read plus an
// in-place block rewrite before the data returns (the scrub-or-retry
// path), charged as active energy. Free when nothing was ever seeded.
func (c *Card) scrubLatent(addr, size units.Bytes, start units.Time) units.Time {
	if c.inj == nil || c.inj.LatentPending() == 0 {
		return 0
	}
	first, last := c.blockRange(addr, size)
	perBlock := c.readMemo.Time(c.blockSize) + c.writeMemo.Time(c.blockSize)
	n := c.inj.SurfaceLatent(c.evName, first, last, start, perBlock)
	if n == 0 {
		return 0
	}
	penalty := perBlock * units.Time(n)
	c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, penalty)
	return penalty
}

// ensureSpace guarantees the head's active segment can take one more block,
// returning any synchronous stall time incurred finishing cleans. A head
// only opens a segment while another remains erased (or nothing is
// cleanable), so cleaning relocations always have somewhere to land.
func (c *Card) ensureSpace(h logHead, at units.Time) units.Time {
	if c.active[h] != noSegment && c.activeFree[h] > 0 {
		return 0
	}
	var stall units.Time
	for len(c.erased) < 2 {
		if c.job == nil {
			c.startJob(at + stall)
			if c.job == nil {
				// Nothing cleanable. With erased space in hand that just
				// means every closed segment is fully live right now; open
				// what we have and let host writes create dead blocks. With
				// the pool empty it means wear-out retirement overcommitted
				// the card — live data grew past what the survivors can
				// sustain — so press a retired segment back into service.
				if len(c.erased) == 0 && c.reclaimRetired(at+stall) {
					continue
				}
				break
			}
		}
		stall += c.job.remaining
		c.accrueJob(c.job.remaining)
		c.job.remaining = 0
		c.finishJob(at + stall)
	}
	// The cleaning relocations above may themselves have opened a fresh
	// active segment for this head; use it rather than leaking it.
	if c.active[h] != noSegment && c.activeFree[h] > 0 {
		return stall
	}
	if len(c.erased) == 0 {
		// Unreachable unless the card was sized below its workload from the
		// start: any fault-induced squeeze has retired segments to reclaim.
		panic(fmt.Sprintf("flashcard %s: wedged: no erased space, no cleanable victim, nothing to reclaim (utilization %.3f)",
			c.p.Name, c.Utilization()))
	}
	c.openSegment(h)
	return stall
}

// reclaimRetired presses the least-worn retired segment back into service,
// returning false when none exists. This is retirement's pressure valve:
// canRetire bounds retirement against the live data at retirement time, but
// the live set can grow afterwards, and a card squeezed below what its
// workload needs would wedge — every relocation too big for the remaining
// free space. A retired segment was erased just before retirement and its
// cells still work (wear-out is a threshold, not instant death), so the
// controller reuses the least-worn one rather than fail. The segment keeps
// aging normally and may be retired again once the pressure eases.
func (c *Card) reclaimRetired(at units.Time) bool {
	best := noSegment
	for s := int32(0); s < c.nseg; s++ {
		if c.segState[s] != segBad {
			continue
		}
		if best == noSegment || c.segErases[s] < c.segErases[best] {
			best = s
		}
	}
	if best == noSegment {
		return false
	}
	c.segState[best] = segErased
	c.erased = append(c.erased, best)
	c.badSegs--
	c.stateGen++
	c.inj.RecordReclaim(c.evName, int64(best), at)
	return true
}

// openSegment makes the next erased segment the active segment of head h.
// The head's previous segment must have been closed; silently clobbering it
// would leak its free slots.
func (c *Card) openSegment(h logHead) {
	if c.active[h] != noSegment {
		panic(fmt.Sprintf("flashcard %s: openSegment(%d) while segment %d is active", c.p.Name, h, c.active[h]))
	}
	s := c.erased[0]
	c.erased = c.erased[1:]
	c.active[h] = s
	c.activeFree[h] = c.blocksPerSeg
	c.segState[s] = segActive
	c.fillSeq++
	c.segFillSeq[s] = c.fillSeq
	c.segFill[s] = 0
	c.stateGen++ // the smaller erased pool can change what relocation fits
}

// appendBlock writes one logical block at head h's log position,
// invalidating any previous copy. Callers ensure erased space exists;
// Prefill starts from an all-erased card so its opens always succeed.
func (c *Card) appendBlock(b int32, h logHead) {
	if c.active[h] == noSegment || c.activeFree[h] == 0 {
		if c.active[h] != noSegment {
			c.segState[c.active[h]] = segClosed
			c.active[h] = noSegment
		}
		if len(c.erased) == 0 {
			panic(fmt.Sprintf("flashcard %s: appendBlock without erased space", c.p.Name))
		}
		c.openSegment(h)
	}
	s := c.active[h]
	if old := c.blockSeg[b] - 1; old != noSegment {
		c.segLive[old]--
	}
	c.blockSeg[b] = s + 1
	c.segLive[s]++
	c.segArena[int64(s)*int64(c.blocksPerSeg)+int64(c.segFill[s])] = b
	c.segFill[s]++
	c.activeFree[h]--
	if c.activeFree[h] == 0 {
		c.segState[s] = segClosed
		c.active[h] = noSegment
	}
}

// appendHostRun appends logical blocks [first, last] to the host log,
// returning the synchronous stall time spent waiting for erased space.
// State-identical to the per-block ensureSpace+appendBlock loop it replaced:
// blocks land in the same arena slots, segments close and open at the same
// points, and ensureSpace runs exactly where the per-block loop would have
// done non-trivial work (at rollover, with the stall accumulated so far —
// for every other block it returned immediately). The live counts batch as
// plain integer sums, so the final state is identical, not just equivalent.
func (c *Card) appendHostRun(first, last int64, start units.Time) units.Time {
	var stall units.Time
	bps := int64(c.blocksPerSeg)
	for b := first; b <= last; {
		if c.active[hostHead] == noSegment || c.activeFree[hostHead] == 0 {
			stall += c.ensureSpace(hostHead, start+stall)
		}
		s := c.active[hostHead]
		n := last - b + 1
		if free := int64(c.activeFree[hostHead]); n > free {
			n = free
		}
		base := int64(s)*bps + int64(c.segFill[s])
		invalidated := false
		for i := int64(0); i < n; i++ {
			blk := int32(b + i)
			if old := c.blockSeg[blk] - 1; old != noSegment {
				c.segLive[old]--
				invalidated = true
			}
			c.blockSeg[blk] = s + 1
			c.segArena[base+i] = blk
		}
		c.segLive[s] += int32(n)
		c.segFill[s] += int32(n)
		c.activeFree[hostHead] -= int32(n)
		closed := c.activeFree[hostHead] == 0
		if closed {
			c.segState[s] = segClosed
			c.active[hostHead] = noSegment
		}
		if invalidated || closed {
			c.stateGen++
		}
		c.hostWrites += n
		b += n
	}
	return stall
}

func (c *Card) blockRange(addr, size units.Bytes) (first, last int64) {
	if c.shiftOK {
		return int64(addr >> c.blockShift), int64((addr + size - 1) >> c.blockShift)
	}
	return int64(addr / c.blockSize), int64((addr + size - 1) / c.blockSize)
}

// invalidate drops live copies in [addr, addr+size) (file deletion).
func (c *Card) invalidate(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first, last := c.blockRange(addr, size)
	changed := false
	for b := first; b <= last; b++ {
		if s := c.blockSeg[b] - 1; s != noSegment {
			c.segLive[s]--
			c.blockSeg[b] = 0
			changed = true
		}
	}
	if changed {
		c.stateGen++
	}
}

// advance integrates standby energy and progresses background cleaning
// across the host-idle gap [lastUpdate, now].
func (c *Card) advance(now units.Time) {
	if now <= c.lastUpdate {
		return
	}
	gap := now - c.lastUpdate
	var spent units.Time
	if !c.onDemand {
		spent = c.runCleaner(c.lastUpdate, gap)
	}
	c.meter.AccrueSlot(energy.SlotStandby, c.p.StandbyW, gap-spent)
	c.lastUpdate = now
}

// runCleaner spends up to budget µs of idle time cleaning, starting at the
// given instant; returns time actually spent.
func (c *Card) runCleaner(start, budget units.Time) units.Time {
	var spent units.Time
	for spent < budget {
		if c.job == nil {
			if int32(len(c.erased)) >= reserveSegments {
				return spent // reserve satisfied
			}
			c.startJob(start + spent)
			if c.job == nil {
				return spent // nothing cleanable
			}
		}
		step := units.Min(c.job.remaining, budget-spent)
		c.accrueJob(step)
		c.job.remaining -= step
		spent += step
		if c.job.remaining == 0 {
			c.finishJob(start + spent)
		}
	}
	return spent
}

// startJob selects a cleaning victim whose relocation is guaranteed to fit
// in the remaining free space, and computes the job cost. Leaves job nil
// when no victim qualifies. at timestamps any fault events the job's erase
// schedule draws.
func (c *Card) startJob(at units.Time) {
	if c.wearLevel == 0 && c.noVictimAtGen == c.stateGen {
		return // same state as the last fruitless scan: still nothing cleanable
	}
	victim := c.policy.SelectVictim(c)
	// A leveling move relocates a (often fully live) cold segment, which
	// frees no net space, so it must alternate with ordinary cleans —
	// otherwise a space-starved write could loop on leveling forever.
	if c.wearLevel > 0 && !c.lastLevel {
		if lv := c.wearLevelVictim(); lv != noSegment && c.relocationFits(lv) {
			c.lastLevel = true
			c.startJobFor(lv, at)
			return
		}
	}
	c.lastLevel = false
	if victim != noSegment && !c.relocationFits(victim) {
		// Fall back to the smallest-live victim, the most likely to fit.
		victim = (GreedyPolicy{}).SelectVictim(c)
		if victim != noSegment && !c.relocationFits(victim) {
			victim = noSegment
		}
	}
	if victim == noSegment {
		if c.wearLevel == 0 {
			c.noVictimAtGen = c.stateGen
		}
		return
	}
	c.startJobFor(victim, at)
}

// startJobFor computes the cleaning cost of a chosen victim and installs
// the job. The erase-retry schedule is drawn here, up front, so the job's
// total duration is fixed when it starts (events are timestamped at).
func (c *Card) startJobFor(victim int32, at units.Time) {
	// Copying is a flash read plus a flash write per live byte, followed by
	// the fixed-cost erase.
	live := c.segLive[victim]
	copyWork := c.copyWorkMemo[live]
	if copyWork == 0 && live > 0 {
		copyBytes := units.Bytes(live) * c.blockSize
		copyWork = units.TransferTime(copyBytes, c.p.ReadKBs) + units.TransferTime(copyBytes, c.copyKBs)
		c.copyWorkMemo[live] = copyWork
	}
	pulses, backoff := int64(1), units.Time(0)
	if c.inj != nil {
		pulses, backoff = c.inj.Attempts(fault.OpErase, c.evName, at)
	}
	eraseWork := units.Time(pulses)*c.p.EraseTime + backoff
	total := copyWork + eraseWork
	c.jobStore = cleanJob{victim: victim, remaining: total, total: total,
		eraseWork: eraseWork, erasePulses: pulses}
	c.job = &c.jobStore
}

// wearLevelVictim returns the least-worn closed segment when the wear
// spread exceeds the leveling threshold, or noSegment.
func (c *Card) wearLevelVictim() int32 {
	var minSeg = noSegment
	var minWear, maxWear int64
	for s := int32(0); s < c.nseg; s++ {
		if e := c.segErases[s]; e > maxWear {
			maxWear = e
		}
		if c.segState[s] != segClosed {
			continue
		}
		if minSeg == noSegment || c.segErases[s] < minWear {
			minSeg, minWear = s, c.segErases[s]
		}
	}
	if minSeg == noSegment || maxWear-minWear <= c.wearLevel {
		return noSegment
	}
	return minSeg
}

// relocationFits reports whether victim's live blocks fit in the cleaner's
// active segment plus the erased pool.
func (c *Card) relocationFits(victim int32) bool {
	space := int64(len(c.erased)) * int64(c.blocksPerSeg)
	if c.active[cleanHead] != noSegment {
		space += int64(c.activeFree[cleanHead])
	}
	return int64(c.segLive[victim]) <= space
}

// CleaningTime returns cumulative time spent copying and erasing, and
// HostTime the cumulative host transfer time (including cleaning stalls).
// CleaningTime/(CleaningTime+HostTime) is eNVy's "fraction of time spent
// erasing or copying data within flash" (§6).
func (c *Card) CleaningTime() units.Time { return c.cleanTime }

// HostTime returns cumulative host service time on the card.
func (c *Card) HostTime() units.Time { return c.hostTime }

// accrueJob charges energy for a step of cleaning work. The job copies
// first and erases last, so the final eraseWork of remaining is erase work
// (at the lower erase draw; retried pulses and their backoff included) and
// everything before it is copying.
func (c *Card) accrueJob(step units.Time) {
	c.cleanTime += step
	copying := units.Max(0, c.job.remaining-c.job.eraseWork)
	cp := units.Min(step, copying)
	if cp > 0 {
		c.meter.AccrueSlot(energy.SlotCleaner, c.p.ActiveW, cp)
	}
	if er := step - cp; er > 0 {
		c.meter.AccrueSlot(energy.SlotErase, c.p.EraseW, er)
	}
}

// finishJob applies the completed job's state changes at the given instant:
// relocate the victim's live blocks to the cleaner's log head, then mark the
// victim erased.
func (c *Card) finishJob(at units.Time) {
	v := c.job.victim
	total := c.job.total
	pulses := c.job.erasePulses
	c.job = nil
	c.victimLiveSum += int64(c.segLive[v])
	// Relocate the victim's live blocks to the cleaner's log head in chunks
	// bounded by the head's free space. State-identical to the per-block
	// appendBlock loop it replaced: a victim is always closed (never the
	// cleaner's own active segment), so the per-block decrement/increment
	// pairs batch into one subtraction from the victim and one addition per
	// destination chunk.
	var copied int64
	bps := int64(c.blocksPerSeg)
	base := int64(v) * bps
	src := c.segArena[base : base+int64(c.segFill[v])]
	vp1 := v + 1
	for si := 0; si < len(src); {
		if c.blockSeg[src[si]] != vp1 {
			si++ // stale arena entry: the block was overwritten or deleted
			continue
		}
		if c.active[cleanHead] == noSegment || c.activeFree[cleanHead] == 0 {
			if c.active[cleanHead] != noSegment {
				c.segState[c.active[cleanHead]] = segClosed
				c.active[cleanHead] = noSegment
			}
			if len(c.erased) == 0 {
				panic(fmt.Sprintf("flashcard %s: appendBlock without erased space", c.p.Name))
			}
			c.openSegment(cleanHead)
		}
		s := c.active[cleanHead]
		dst := int64(s)*bps + int64(c.segFill[s])
		free := c.activeFree[cleanHead]
		n := int32(0)
		for si < len(src) && n < free {
			b := src[si]
			si++
			if c.blockSeg[b] != vp1 {
				continue
			}
			c.blockSeg[b] = s + 1
			c.segArena[dst+int64(n)] = b
			n++
		}
		c.segLive[s] += n
		c.segFill[s] += n
		c.activeFree[cleanHead] = free - n
		if c.activeFree[cleanHead] == 0 {
			c.segState[s] = segClosed
			c.active[cleanHead] = noSegment
		}
		copied += int64(n)
	}
	c.segLive[v] -= int32(copied)
	c.copyWrites += copied
	c.segFill[v] = 0
	if c.segLive[v] != 0 {
		panic(fmt.Sprintf("flashcard %s: segment %d has %d live blocks after clean", c.p.Name, v, c.segLive[v]))
	}
	// Wear is per physical pulse: a failed erase stresses the cells exactly
	// like a successful one, so retried erasures age the segment faster.
	c.segErases[v] += pulses
	c.totalErases += pulses
	c.cErases.Add(pulses)
	c.retireIfWorn(v, at)
	c.stateGen++
	c.cCleans.Inc()
	c.cCopied.Add(copied)
	c.hCleanMs.Observe(total.Milliseconds())
	if c.sc.Tracing() {
		c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardClean, Dev: c.evName,
			Addr: int64(v), Size: copied, Dur: int64(total)})
		if copied > 0 {
			c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardCopy, Dev: c.evName,
				Addr: int64(v), Size: copied})
		}
		c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardErase, Dev: c.evName,
			Addr: int64(v), Size: c.segErases[v]})
	}
}

// retireIfWorn decides the just-erased (and now empty) segment's fate:
// normally it rejoins the erased pool; past the wear-out threshold it is
// retired as a bad block — covered by a spare while any remain, otherwise
// shrinking usable capacity. A segment whose retirement would strand live
// data or break the cleaning reserve stays in service (a real controller
// has the same floor: it cannot remap capacity it does not have).
func (c *Card) retireIfWorn(v int32, at units.Time) {
	if c.inj.WornOut(c.segErases[v]) {
		if c.canRetire() {
			c.segState[v] = segBad
			c.badSegs++
			if c.sparesLeft > 0 {
				c.sparesLeft--
				c.inj.RecordRemap(c.evName, int64(v), c.sparesLeft, at)
			} else {
				c.inj.RecordSpareExhausted(c.evName, int64(v), at)
			}
			return
		}
		c.inj.RecordSpareExhausted(c.evName, int64(v), at)
	}
	c.segState[v] = segErased
	c.erased = append(c.erased, v)
}

// canRetire reports whether the card can afford to lose one more segment:
// the survivors must still hold all live data plus the cleaning reserve,
// and the erased pool must stay non-empty without the candidate. The pool
// condition keeps retirement from wedging the cleaner in the moment: a
// victim's live blocks always fit into one whole erased segment, so a
// non-empty pool guarantees some victim stays cleanable. It cannot see the
// future, though — the capacity check uses the live data at retirement
// time, and a workload whose live set grows afterwards can still squeeze
// the card past sustainability; reclaimRetired is the valve for that case.
func (c *Card) canRetire() bool {
	if len(c.erased) == 0 {
		return false
	}
	usable := int64(c.nseg-c.badSegs) - 1
	if usable < reserveSegments+2 {
		return false
	}
	return c.LiveBlocks() <= (usable-reserveSegments)*int64(c.blocksPerSeg)
}

// BadSegments returns the number of segments retired by injected wear-out.
func (c *Card) BadSegments() int64 { return int64(c.badSegs) }

// SpareSegmentsLeft returns the plan's spare segments not yet consumed.
func (c *Card) SpareSegmentsLeft() int64 { return c.sparesLeft }

// ReadExtent services a coalesced run of read requests back to back,
// byte-identical to calling Idle(reqs[k].Time) followed by Access(reqs[k])
// for each k in order. The per-record idle advance (standby accrual plus
// background cleaning across the gap) is preserved; Access's own
// advance(start) is omitted only because it is provably a no-op after it:
// advance(req.Time) leaves lastUpdate ≥ req.Time, busyUntil ≤ lastUpdate
// always holds, so start = max(req.Time, busyUntil) ≤ lastUpdate.
// completions[k] receives request k's completion time.
func (c *Card) ReadExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		req := &reqs[k]
		c.advance(req.Time)
		start := units.Max(req.Time, c.busyUntil)
		service := c.readService(req.Size, start) + c.scrubLatent(req.Addr, req.Size, start)
		c.hostTime += service
		completion := start + service
		if completion > c.lastUpdate {
			c.lastUpdate = completion
		}
		c.busyUntil = completion
		completions[k] = completion
	}
}

// WriteExtent is ReadExtent's write-path counterpart, with the same
// Idle-then-Access equivalence per request.
func (c *Card) WriteExtent(reqs []device.Request, completions []units.Time) {
	for k := range reqs {
		req := &reqs[k]
		c.advance(req.Time)
		start := units.Max(req.Time, c.busyUntil)
		service := c.write(req.Addr, req.Size, start)
		completion := start + service
		if completion > c.lastUpdate {
			c.lastUpdate = completion
		}
		c.busyUntil = completion
		completions[k] = completion
	}
}

// Crash implements device.Crasher: power failure drops the in-flight
// cleaning job. The job's copies and erase had not been applied — state
// changes land atomically at finishJob — so the abandoned job loses only
// the work already spent on it, never live data. Flash contents survive.
// With carry_cleaning_backlog the job is preserved instead of dropped:
// Recover drains it before the card serves again.
func (c *Card) Crash(at units.Time) {
	c.advance(at)
	if c.job != nil && c.inj.CarryBacklog() {
		c.carried = c.job
	}
	c.job = nil
	c.stateGen++ // defensive: recovery re-derives state; never trust the memo across it
	if c.busyUntil > at {
		c.busyUntil = at
	}
	if c.bgBusyUntil > at {
		c.bgBusyUntil = at
	}
}

// Recover implements device.Crasher: the controller rebuilds its block map
// by scanning one segment summary per segment (a block-sized read each),
// then verifies the rebuilt state. Returns when the scan completes. A
// cleaning job carried across the crash (carry_cleaning_backlog) is
// drained synchronously before the card serves: the segment-summary scan
// found the half-cleaned victim, and a controller that preserves its
// progress journal must finish the relocation before trusting the map —
// so the backlog lands on post-recovery latency, where it belongs.
func (c *Card) Recover(at units.Time) units.Time {
	scan := units.Time(c.nseg) * units.TransferTime(c.blockSize, c.p.ReadKBs)
	c.meter.AccrueSlot(energy.SlotActive, c.p.ActiveW, scan)
	done := at + scan
	if job := c.carried; job != nil {
		c.carried = nil
		c.job = job
		drain := job.remaining
		live := int64(c.segLive[job.victim])
		c.accrueJob(drain)
		job.remaining = 0
		done += drain
		c.finishJob(done)
		c.inj.RecordBacklog(c.evName, int64(job.victim), live, done, drain)
	}
	if done > c.lastUpdate {
		c.lastUpdate = done
	}
	c.busyUntil = units.Max(c.busyUntil, done)
	if err := c.CheckConsistency(); err != nil {
		c.inj.Violatef("flashcard %s: recovery: %v", c.p.Name, err)
	}
	return done
}

// HasData reports whether every logical block of [addr, addr+size) holds
// live data on the card — the witness for the array recovery invariant
// that no acknowledged write is lost while a mirror member survives.
func (c *Card) HasData(addr, size units.Bytes) bool {
	first, last := c.blockRange(addr, size)
	for b := first; b <= last; b++ {
		if b < 0 || b >= int64(len(c.blockSeg)) || c.blockSeg[b] == 0 {
			return false
		}
	}
	return true
}

// CheckConsistency recomputes live-block counts from the block map and
// verifies them against the per-segment counters, and that erased and
// retired segments hold no live data. A non-nil error means the simulator's
// own bookkeeping is broken.
func (c *Card) CheckConsistency() error {
	live := make([]int32, c.nseg)
	for b, sp := range c.blockSeg {
		s := sp - 1
		if s == noSegment {
			continue
		}
		if s < 0 || s >= c.nseg {
			return fmt.Errorf("block %d mapped to invalid segment %d", b, s)
		}
		live[s]++
	}
	for s := int32(0); s < c.nseg; s++ {
		if live[s] != c.segLive[s] {
			return fmt.Errorf("segment %d: segLive=%d but %d blocks map to it", s, c.segLive[s], live[s])
		}
		if (c.segState[s] == segErased || c.segState[s] == segBad) && live[s] != 0 {
			return fmt.Errorf("segment %d: erased/bad segment holds %d live blocks", s, live[s])
		}
	}
	return nil
}

var (
	_ device.Device       = (*Card)(nil)
	_ device.WearReporter = (*Card)(nil)
	_ device.Crasher      = (*Card)(nil)
)
