// Package flashcard models a byte-addressable flash memory card (Intel
// Series 2 / Series 2+) managed as a log-structured store, the way the
// Microsoft Flash File System and eNVy do (§2):
//
//   - reads proceed at memory speed from wherever the block lives;
//   - writes append to the active segment; overwriting a logical block
//     invalidates its previous copy;
//   - one segment is filled completely before a new one is opened (§4.2);
//   - a background cleaner keeps erased segments in reserve, copying live
//     data out of the lowest-utilization victim and erasing it (1.6 s per
//     segment on the Series 2, regardless of the amount of data);
//   - cleaning runs in the gaps between host operations and is suspended
//     during host I/O; a write stalls only when no erased space exists, in
//     which case it absorbs the remaining cleaning time synchronously;
//   - cleaner relocations go to their own log head, separate from fresh
//     host writes. Survivor blocks are long-lived by definition, so mixing
//     them with hot data would drag every segment toward the same mediocre
//     utilization (the LFS hot/cold mixing problem; eNVy [24] separates
//     them for the same reason).
//
// Per-segment erase counts are tracked for the §5.2 endurance analysis.
package flashcard

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

const (
	// noSegment marks a logical block with no live copy and an unset log
	// head.
	noSegment = int32(-1)
	// reserveSegments is how many erased segments the cleaner tries to keep
	// available: one for the host to open plus one so cleaning copies always
	// have somewhere to land (the classic LFS reserve). The paper's
	// simulator "attempts to keep at least one segment erased at all
	// times" (§4.2).
	reserveSegments = 2
)

// segState tracks the lifecycle of one segment.
type segState uint8

const (
	segErased segState = iota // erased, ready to open
	segActive                 // accepting appends (host or cleaner head)
	segClosed                 // filled; cleanable
)

// logHead identifies which append stream a block enters.
type logHead uint8

const (
	hostHead logHead = iota
	cleanHead
	numHeads
)

// Card is a flash memory card device model.
type Card struct {
	p         device.FlashCardParams
	meter     *energy.Meter
	capacity  units.Bytes
	blockSize units.Bytes
	policy    Policy
	onDemand  bool  // clean only when a write needs space
	wearLevel int64 // static wear-leveling imbalance threshold; 0 = off
	lastLevel bool  // previous job was a leveling move (alternation guard)

	blocksPerSeg int32
	nseg         int32

	// blockSeg[b] is the segment holding logical block b's live copy.
	blockSeg []int32
	// segLive[s] counts live blocks in segment s.
	segLive []int32
	// segState[s] is the lifecycle state of segment s.
	segState []segState
	// segBlocks[s] lists logical blocks appended to s; entries are stale
	// when blockSeg no longer points back.
	segBlocks [][]int32
	// segErases[s] counts erasures of segment s (endurance, §5.2).
	segErases []int64
	// segFillSeq[s] is the log sequence number at which s was opened,
	// used by the FIFO and cost-benefit cleaning policies.
	segFillSeq []int64
	fillSeq    int64

	// active[h] is the segment accepting appends for log head h, or
	// noSegment; activeFree[h] counts its remaining slots.
	active     [numHeads]int32
	activeFree [numHeads]int32
	erased     []int32

	job *cleanJob

	lastUpdate  units.Time
	busyUntil   units.Time
	bgBusyUntil units.Time

	// Counters for experiment reporting.
	hostWrites    int64 // host blocks written
	copyWrites    int64 // cleaner blocks copied
	totalErases   int64
	stallTime     units.Time // write time spent waiting for erased space
	stalls        int64
	victimLiveSum int64      // sum of live counts over all cleaning victims
	cleanTime     units.Time // cumulative copy+erase time
	hostTime      units.Time // cumulative host transfer time
	prefilled     bool

	// Observability (nil-safe no-ops without a scope).
	sc        *obs.Scope
	evName    string
	cErases   *obs.Counter
	cCleans   *obs.Counter
	cCopied   *obs.Counter
	cHostBlks *obs.Counter
	cStalls   *obs.Counter
	hCleanMs  *obs.Histogram
}

// cleanJob is an in-progress cleaning of one victim segment.
// The job copies first, then erases: while remaining > EraseTime the work
// being done is copying.
type cleanJob struct {
	victim    int32
	remaining units.Time
	total     units.Time // full job cost, for event reporting
}

// Option configures a Card.
type Option func(*Card)

// WithPolicy selects the cleaning victim-selection policy. The default is
// GreedyPolicy (lowest utilization first), which is what MFFS uses (§2).
func WithPolicy(p Policy) Option {
	return func(c *Card) { c.policy = p }
}

// WithOnDemandCleaning disables background cleaning: segments are cleaned
// only when a write needs space, synchronously (the "on-demand" cleaning
// policy of §4.2's parameter list).
func WithOnDemandCleaning() Option {
	return func(c *Card) { c.onDemand = true }
}

// WithWearLeveling enables static wear leveling (§2: "it is possible to
// spread the load over the flash memory to avoid burning out particular
// areas"): when the erase-count spread between the most- and least-worn
// segments exceeds threshold, the cleaner forces the least-worn closed
// segment into circulation — relocating its (usually cold) data to the log
// head so the barely-worn cells join the erased pool and absorb future hot
// writes. Costs extra copies; bounds the wear spread.
func WithWearLeveling(threshold int64) Option {
	return func(c *Card) { c.wearLevel = threshold }
}

// WithScope attaches an observability scope: erase/clean/copy/stall
// counters and events. A nil scope is free.
func WithScope(sc *obs.Scope) Option {
	return func(c *Card) {
		c.sc = sc
		c.cErases = sc.Counter("flashcard.erases")
		c.cCleans = sc.Counter("flashcard.cleans")
		c.cCopied = sc.Counter("flashcard.copied_blocks")
		c.cHostBlks = sc.Counter("flashcard.host_blocks")
		c.cStalls = sc.Counter("flashcard.stalls")
		c.hCleanMs = sc.Histogram("flashcard.clean_ms", obs.LogBuckets(1e-3, 1e7))
	}
}

// New builds a flash card with the given capacity and logical block size.
// Capacity is rounded down to a whole number of segments.
func New(p device.FlashCardParams, capacity units.Bytes, blockSize units.Bytes, opts ...Option) (*Card, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 || blockSize > p.SegmentSize {
		return nil, fmt.Errorf("flashcard %s: block size %v must be in (0, %v]", p.Name, blockSize, p.SegmentSize)
	}
	if p.SegmentSize%blockSize != 0 {
		return nil, fmt.Errorf("flashcard %s: segment size %v not a multiple of block size %v", p.Name, p.SegmentSize, blockSize)
	}
	nseg := int32(capacity / p.SegmentSize)
	if nseg < reserveSegments+2 {
		return nil, fmt.Errorf("flashcard %s: capacity %v yields %d segments, need ≥ %d",
			p.Name, capacity, nseg, reserveSegments+2)
	}
	c := &Card{
		p:            p,
		meter:        energy.NewMeter(),
		capacity:     units.Bytes(nseg) * p.SegmentSize,
		blockSize:    blockSize,
		policy:       GreedyPolicy{},
		blocksPerSeg: int32(p.SegmentSize / blockSize),
		nseg:         nseg,
		segLive:      make([]int32, nseg),
		segState:     make([]segState, nseg),
		segBlocks:    make([][]int32, nseg),
		segErases:    make([]int64, nseg),
		segFillSeq:   make([]int64, nseg),
		active:       [numHeads]int32{noSegment, noSegment},
	}
	c.blockSeg = make([]int32, c.capacity/blockSize)
	for i := range c.blockSeg {
		c.blockSeg[i] = noSegment
	}
	c.erased = make([]int32, nseg)
	for i := range c.erased {
		c.erased[i] = int32(i)
	}
	for _, o := range opts {
		o(c)
	}
	c.evName = c.Name()
	return c, nil
}

// Prefill populates the card with the given amount of live data, placed
// sequentially from logical address zero, without charging time or energy:
// it models the preallocation the paper performs before each simulation to
// set the storage utilization (§4.2). Prefill must be called before any
// Access.
func (c *Card) Prefill(data units.Bytes) error {
	if c.prefilled || c.hostWrites > 0 || c.copyWrites > 0 {
		return fmt.Errorf("flashcard %s: Prefill after Access or a previous Prefill", c.p.Name)
	}
	c.prefilled = true
	blocks := int64(units.CeilDiv(data, c.blockSize))
	maxBlocks := int64(c.nseg-reserveSegments) * int64(c.blocksPerSeg)
	if blocks > maxBlocks {
		return fmt.Errorf("flashcard %s: prefill %v exceeds usable capacity (%v of %v)",
			c.p.Name, data, units.Bytes(maxBlocks)*c.blockSize, c.capacity)
	}
	for b := int64(0); b < blocks; b++ {
		c.appendBlock(int32(b), hostHead)
	}
	return nil
}

// Name implements device.Device.
func (c *Card) Name() string { return fmt.Sprintf("%s-%s", c.p.Name, c.p.Source) }

// Meter implements device.Device.
func (c *Card) Meter() *energy.Meter { return c.meter }

// Params returns the device parameters.
func (c *Card) Params() device.FlashCardParams { return c.p }

// Capacity returns the usable capacity (whole segments).
func (c *Card) Capacity() units.Bytes { return c.capacity }

// LiveBlocks returns the number of live logical blocks on the card.
func (c *Card) LiveBlocks() int64 {
	var live int64
	for _, l := range c.segLive {
		live += int64(l)
	}
	return live
}

// Utilization returns the live fraction of the card.
func (c *Card) Utilization() float64 {
	return float64(c.LiveBlocks()) / float64(int64(c.nseg)*int64(c.blocksPerSeg))
}

// TotalErases returns the total number of segment erasures performed.
func (c *Card) TotalErases() int64 { return c.totalErases }

// CopiedBlocks returns the number of blocks relocated by the cleaner;
// (hostWrites+copyWrites)/hostWrites is the cleaning write amplification.
func (c *Card) CopiedBlocks() int64 { return c.copyWrites }

// HostBlocks returns the number of blocks written by the host.
func (c *Card) HostBlocks() int64 { return c.hostWrites }

// StallTime returns cumulative write time spent waiting for erased space.
func (c *Card) StallTime() units.Time { return c.stallTime }

// Stalls returns the number of writes that waited for erased space.
func (c *Card) Stalls() int64 { return c.stalls }

// MeanVictimLive returns the average live-block count of cleaning victims,
// a direct measure of cleaning cost (0 with no cleans yet).
func (c *Card) MeanVictimLive() float64 {
	if c.totalErases == 0 {
		return 0
	}
	return float64(c.victimLiveSum) / float64(c.totalErases)
}

// LiveHistogram buckets closed segments by live fraction into deciles
// (index 10 = exactly full). Useful for studying cleaner behavior.
func (c *Card) LiveHistogram() [11]int {
	var h [11]int
	for s := int32(0); s < c.nseg; s++ {
		if c.segState[s] != segClosed {
			continue
		}
		d := int(float64(c.segLive[s]) / float64(c.blocksPerSeg) * 10)
		if d > 10 {
			d = 10
		}
		h[d]++
	}
	return h
}

// EraseCounts implements device.WearReporter.
func (c *Card) EraseCounts() []int64 {
	out := make([]int64, len(c.segErases))
	copy(out, c.segErases)
	return out
}

// EnduranceCycles implements device.WearReporter.
func (c *Card) EnduranceCycles() int64 { return c.p.EnduranceCycles }

// Idle implements device.Device: accounts standby energy and advances
// background cleaning through the idle gap.
func (c *Card) Idle(now units.Time) { c.advance(now) }

// Finish implements device.Device.
func (c *Card) Finish(now units.Time) { c.advance(now) }

// Access implements device.Device.
func (c *Card) Access(req device.Request) units.Time {
	if req.Op == trace.Delete {
		c.invalidate(req.Addr, req.Size)
		return req.Time
	}
	start := units.Max(req.Time, c.busyUntil)
	c.advance(start)

	var service units.Time
	switch req.Op {
	case trace.Read:
		service = units.TransferTime(req.Size, c.p.ReadKBs)
		c.meter.Accrue(energy.StateActive, c.p.ActiveW, service)
		c.hostTime += service
	case trace.Write:
		service = c.write(req.Addr, req.Size, start)
	}
	completion := start + service
	// A background operation may already have advanced the energy clock
	// past this completion; never move it backwards.
	if completion > c.lastUpdate {
		c.lastUpdate = completion
	}
	c.busyUntil = completion
	return completion
}

// Background performs an operation off the host's critical path (cache
// installs in the hybrid architecture): it charges the same time and
// energy as Access and mutates the same block state, but does not delay
// subsequent host operations. Returns the completion time.
func (c *Card) Background(req device.Request) units.Time {
	if req.Op == trace.Delete {
		c.invalidate(req.Addr, req.Size)
		return req.Time
	}
	start := units.Max(req.Time, c.bgBusyUntil)
	c.advance(start)
	var service units.Time
	switch req.Op {
	case trace.Read:
		service = units.TransferTime(req.Size, c.p.ReadKBs)
		c.meter.Accrue(energy.StateActive, c.p.ActiveW, service)
	case trace.Write:
		service = c.write(req.Addr, req.Size, start)
	}
	completion := start + service
	if completion > c.lastUpdate {
		c.lastUpdate = completion
	}
	c.bgBusyUntil = completion
	return completion
}

// write appends the blocks of [addr, addr+size) to the host log and returns
// the service time, including any synchronous wait for erased space. start
// is the arrival instant, used to timestamp events.
func (c *Card) write(addr, size units.Bytes, start units.Time) units.Time {
	first := int64(addr / c.blockSize)
	last := int64((addr + size - 1) / c.blockSize)
	var stall units.Time
	for b := first; b <= last; b++ {
		stall += c.ensureSpace(hostHead, start+stall)
		c.appendBlock(int32(b), hostHead)
		c.hostWrites++
	}
	c.cHostBlks.Add(last - first + 1)
	transfer := units.TransferTime(size, c.p.WriteKBs)
	c.meter.Accrue(energy.StateActive, c.p.ActiveW, transfer)
	c.hostTime += transfer // stall time is cleaning work, counted there
	if stall > 0 {
		c.stallTime += stall
		c.stalls++
		c.cStalls.Inc()
		if c.sc.Tracing() {
			c.sc.Emit(obs.Event{T: int64(start), Kind: obs.EvCardStall, Dev: c.evName, Dur: int64(stall)})
		}
	}
	return stall + transfer
}

// ensureSpace guarantees the head's active segment can take one more block,
// returning any synchronous stall time incurred finishing cleans. A head
// only opens a segment while another remains erased (or nothing is
// cleanable), so cleaning relocations always have somewhere to land.
func (c *Card) ensureSpace(h logHead, at units.Time) units.Time {
	if c.active[h] != noSegment && c.activeFree[h] > 0 {
		return 0
	}
	var stall units.Time
	for len(c.erased) < 2 {
		if c.job == nil {
			c.startJob()
			if c.job == nil {
				break // nothing cleanable; open what we have
			}
		}
		stall += c.job.remaining
		c.accrueJob(c.job.remaining)
		c.job.remaining = 0
		c.finishJob(at + stall)
	}
	// The cleaning relocations above may themselves have opened a fresh
	// active segment for this head; use it rather than leaking it.
	if c.active[h] != noSegment && c.activeFree[h] > 0 {
		return stall
	}
	if len(c.erased) == 0 {
		panic(fmt.Sprintf("flashcard %s: wedged: no erased space and no cleanable victim (utilization %.3f)",
			c.p.Name, c.Utilization()))
	}
	c.openSegment(h)
	return stall
}

// openSegment makes the next erased segment the active segment of head h.
// The head's previous segment must have been closed; silently clobbering it
// would leak its free slots.
func (c *Card) openSegment(h logHead) {
	if c.active[h] != noSegment {
		panic(fmt.Sprintf("flashcard %s: openSegment(%d) while segment %d is active", c.p.Name, h, c.active[h]))
	}
	s := c.erased[0]
	c.erased = c.erased[1:]
	c.active[h] = s
	c.activeFree[h] = c.blocksPerSeg
	c.segState[s] = segActive
	c.fillSeq++
	c.segFillSeq[s] = c.fillSeq
	c.segBlocks[s] = c.segBlocks[s][:0]
}

// appendBlock writes one logical block at head h's log position,
// invalidating any previous copy. Callers ensure erased space exists;
// Prefill starts from an all-erased card so its opens always succeed.
func (c *Card) appendBlock(b int32, h logHead) {
	if c.active[h] == noSegment || c.activeFree[h] == 0 {
		if c.active[h] != noSegment {
			c.segState[c.active[h]] = segClosed
			c.active[h] = noSegment
		}
		if len(c.erased) == 0 {
			panic(fmt.Sprintf("flashcard %s: appendBlock without erased space", c.p.Name))
		}
		c.openSegment(h)
	}
	s := c.active[h]
	if old := c.blockSeg[b]; old != noSegment {
		c.segLive[old]--
	}
	c.blockSeg[b] = s
	c.segLive[s]++
	c.segBlocks[s] = append(c.segBlocks[s], b)
	c.activeFree[h]--
	if c.activeFree[h] == 0 {
		c.segState[s] = segClosed
		c.active[h] = noSegment
	}
}

// invalidate drops live copies in [addr, addr+size) (file deletion).
func (c *Card) invalidate(addr, size units.Bytes) {
	if size <= 0 {
		return
	}
	first := int64(addr / c.blockSize)
	last := int64((addr + size - 1) / c.blockSize)
	for b := first; b <= last; b++ {
		if s := c.blockSeg[b]; s != noSegment {
			c.segLive[s]--
			c.blockSeg[b] = noSegment
		}
	}
}

// advance integrates standby energy and progresses background cleaning
// across the host-idle gap [lastUpdate, now].
func (c *Card) advance(now units.Time) {
	if now <= c.lastUpdate {
		return
	}
	gap := now - c.lastUpdate
	var spent units.Time
	if !c.onDemand {
		spent = c.runCleaner(c.lastUpdate, gap)
	}
	c.meter.Accrue(energy.StateStandby, c.p.StandbyW, gap-spent)
	c.lastUpdate = now
}

// runCleaner spends up to budget µs of idle time cleaning, starting at the
// given instant; returns time actually spent.
func (c *Card) runCleaner(start, budget units.Time) units.Time {
	var spent units.Time
	for spent < budget {
		if c.job == nil {
			if int32(len(c.erased)) >= reserveSegments {
				return spent // reserve satisfied
			}
			c.startJob()
			if c.job == nil {
				return spent // nothing cleanable
			}
		}
		step := units.Min(c.job.remaining, budget-spent)
		c.accrueJob(step)
		c.job.remaining -= step
		spent += step
		if c.job.remaining == 0 {
			c.finishJob(start + spent)
		}
	}
	return spent
}

// startJob selects a cleaning victim whose relocation is guaranteed to fit
// in the remaining free space, and computes the job cost. Leaves job nil
// when no victim qualifies.
func (c *Card) startJob() {
	victim := c.policy.SelectVictim(c)
	// A leveling move relocates a (often fully live) cold segment, which
	// frees no net space, so it must alternate with ordinary cleans —
	// otherwise a space-starved write could loop on leveling forever.
	if c.wearLevel > 0 && !c.lastLevel {
		if lv := c.wearLevelVictim(); lv != noSegment && c.relocationFits(lv) {
			c.lastLevel = true
			c.startJobFor(lv)
			return
		}
	}
	c.lastLevel = false
	if victim != noSegment && !c.relocationFits(victim) {
		// Fall back to the smallest-live victim, the most likely to fit.
		victim = (GreedyPolicy{}).SelectVictim(c)
		if victim != noSegment && !c.relocationFits(victim) {
			victim = noSegment
		}
	}
	if victim == noSegment {
		return
	}
	c.startJobFor(victim)
}

// startJobFor computes the cleaning cost of a chosen victim and installs
// the job.
func (c *Card) startJobFor(victim int32) {
	copyBytes := units.Bytes(c.segLive[victim]) * c.blockSize
	// Copying is a flash read plus a flash write per live byte, followed by
	// the fixed-cost erase.
	copyKBs := c.p.CopyKBs
	if copyKBs == 0 {
		copyKBs = c.p.WriteKBs
	}
	copyWork := units.TransferTime(copyBytes, c.p.ReadKBs) + units.TransferTime(copyBytes, copyKBs)
	total := copyWork + c.p.EraseTime
	c.job = &cleanJob{victim: victim, remaining: total, total: total}
}

// wearLevelVictim returns the least-worn closed segment when the wear
// spread exceeds the leveling threshold, or noSegment.
func (c *Card) wearLevelVictim() int32 {
	var minSeg = noSegment
	var minWear, maxWear int64
	for s := int32(0); s < c.nseg; s++ {
		if e := c.segErases[s]; e > maxWear {
			maxWear = e
		}
		if c.segState[s] != segClosed {
			continue
		}
		if minSeg == noSegment || c.segErases[s] < minWear {
			minSeg, minWear = s, c.segErases[s]
		}
	}
	if minSeg == noSegment || maxWear-minWear <= c.wearLevel {
		return noSegment
	}
	return minSeg
}

// relocationFits reports whether victim's live blocks fit in the cleaner's
// active segment plus the erased pool.
func (c *Card) relocationFits(victim int32) bool {
	space := int64(len(c.erased)) * int64(c.blocksPerSeg)
	if c.active[cleanHead] != noSegment {
		space += int64(c.activeFree[cleanHead])
	}
	return int64(c.segLive[victim]) <= space
}

// CleaningTime returns cumulative time spent copying and erasing, and
// HostTime the cumulative host transfer time (including cleaning stalls).
// CleaningTime/(CleaningTime+HostTime) is eNVy's "fraction of time spent
// erasing or copying data within flash" (§6).
func (c *Card) CleaningTime() units.Time { return c.cleanTime }

// HostTime returns cumulative host service time on the card.
func (c *Card) HostTime() units.Time { return c.hostTime }

// accrueJob charges energy for a step of cleaning work. The job copies
// first and erases last, so the final EraseTime of remaining is erase work
// (at the lower erase draw) and everything before it is copying.
func (c *Card) accrueJob(step units.Time) {
	c.cleanTime += step
	copying := units.Max(0, c.job.remaining-c.p.EraseTime)
	cp := units.Min(step, copying)
	if cp > 0 {
		c.meter.Accrue(energy.StateCleaner, c.p.ActiveW, cp)
	}
	if er := step - cp; er > 0 {
		c.meter.Accrue(energy.StateErase, c.p.EraseW, er)
	}
}

// finishJob applies the completed job's state changes at the given instant:
// relocate the victim's live blocks to the cleaner's log head, then mark the
// victim erased.
func (c *Card) finishJob(at units.Time) {
	v := c.job.victim
	total := c.job.total
	c.job = nil
	c.victimLiveSum += int64(c.segLive[v])
	var copied int64
	for _, b := range c.segBlocks[v] {
		if c.blockSeg[b] == v {
			c.segLive[v]--
			c.blockSeg[b] = noSegment // avoid double-decrement in appendBlock
			c.appendBlock(b, cleanHead)
			c.copyWrites++
			copied++
		}
	}
	c.segBlocks[v] = c.segBlocks[v][:0]
	if c.segLive[v] != 0 {
		panic(fmt.Sprintf("flashcard %s: segment %d has %d live blocks after clean", c.p.Name, v, c.segLive[v]))
	}
	c.segErases[v]++
	c.totalErases++
	c.segState[v] = segErased
	c.erased = append(c.erased, v)
	c.cCleans.Inc()
	c.cErases.Inc()
	c.cCopied.Add(copied)
	c.hCleanMs.Observe(total.Milliseconds())
	if c.sc.Tracing() {
		c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardClean, Dev: c.evName,
			Addr: int64(v), Size: copied, Dur: int64(total)})
		if copied > 0 {
			c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardCopy, Dev: c.evName,
				Addr: int64(v), Size: copied})
		}
		c.sc.Emit(obs.Event{T: int64(at), Kind: obs.EvCardErase, Dev: c.evName,
			Addr: int64(v), Size: c.segErases[v]})
	}
}

var (
	_ device.Device       = (*Card)(nil)
	_ device.WearReporter = (*Card)(nil)
)
