// Package array implements composite storage devices: N member devices
// behind the ordinary device.Device interface, striped or mirrored, where
// each member carries its own fault domain (fault.PlanSet). The paper
// compares single devices; at fleet scale the same question becomes a
// robustness one — what happens when one member of an array dies or
// silently rots while the system must keep serving?
//
//   - A mirror fans every write to all live members (completion = the
//     slowest replica) and serves reads from the first ready member. When
//     a member dies the array degrades to the survivors, and — when a
//     replacement factory is configured — rebuilds onto a fresh member,
//     copying the acknowledged data off a survivor in the background.
//   - A stripe distributes the block address space round-robin across
//     members. A dead member's share of an access surfaces as a bounded
//     retry/backoff penalty (counted exhausted — a real stack would have
//     returned EIO), because a trace replay cannot branch on failure.
//
// The array keeps an acknowledged-write ledger and proves, at every death
// and every crash recovery, that no acknowledged write is lost while at
// least one mirror member still holds it; violations land on the fault
// report exactly like the core's other recovery invariants.
package array

import (
	"fmt"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// Mode selects the array topology.
type Mode uint8

const (
	// Mirror replicates every write on all members.
	Mirror Mode = iota
	// Stripe distributes the block address space round-robin.
	Stripe
)

// String names the mode ("mirror", "stripe").
func (m Mode) String() string {
	if m == Stripe {
		return "stripe"
	}
	return "mirror"
}

// Member is one array slot: a constructed device plus its own fault
// injector (nil = fault-free member) and an optional replacement factory
// for mirror rebuilds.
type Member struct {
	Dev device.Device
	Inj *fault.Injector
	// Replace builds a fresh healthy device for this slot after a death
	// (mirror rebuild); nil leaves the array degraded.
	Replace func() (device.Device, error)
}

// Config assembles an array.
type Config struct {
	Mode      Mode
	BlockSize units.Bytes
	// Scope receives array-level events; member devices carry their own.
	Scope *obs.Scope
	// SysInj, when non-nil, is the run's system-level injector: array
	// invariant violations are recorded there so they surface on the same
	// report as the core's. Without it the array keeps its own ledger,
	// merged into FaultReport.
	SysInj *fault.Injector
}

// member is a Member plus its runtime fault-domain state.
type member struct {
	Member
	name string
	// ext caches the Dev's extentDevice assertion (nil when the device
	// has no batched-extent capability); refreshed when a rebuild swaps
	// the device.
	ext extentDevice
	// dead marks a member that is currently not serving; died marks a
	// slot whose one death already fired (a rebuilt slot does not die
	// twice — the replacement carries no fault plan).
	dead bool
	died bool
	// readyAt gates reads from a rebuilt member: it takes writes
	// immediately (to stay in sync) but serves reads only once the
	// rebuild copy has finished.
	readyAt units.Time
}

// Array is a composite device. It implements device.Device,
// device.Crasher, and device.WearReporter.
type Array struct {
	mode      Mode
	blockSize units.Bytes
	members   []member
	// retired holds devices replaced after a death: their energy and wear
	// still belong to the run.
	retired []device.Device
	sysInj  *fault.Injector

	// acked is the acknowledged-write ledger: one bit per array block,
	// set when a write completes, cleared on delete. The recovery
	// invariant checks every set bit against the surviving members.
	acked    []uint64
	ackedLen int64

	violations []string

	// scratch is WriteExtent's reusable per-member completion buffer.
	scratch []units.Time

	// mayDie is true when any member has a death scheduled (die_at_us or
	// die_after_erases) — the plans are static, so a false here means
	// checkDeaths can never fire and is skipped entirely.
	mayDie bool
	// trackAcks gates the acknowledged-write ledger: it is only ever
	// consulted at member deaths and crash recoveries, so when neither
	// can happen (no scheduled deaths, no planned power failures) the
	// per-write bookkeeping is pure overhead and is skipped.
	trackAcks bool
	// staticFast is true when the batched member-extent fast path is
	// unconditionally safe: mirror mode, no member can ever die, every
	// member extent-capable. Then no member is ever dead or rebuilding,
	// so extentReady needs no per-call state checks and the read primary
	// is always member 0.
	staticFast bool

	meter *energy.Meter // interface compliance; always empty — see Meters

	sc     *obs.Scope
	evName string
}

// liveCounter, dataHolder, backgrounder, and cardStats are the optional
// member capabilities the array uses when present, kept as local
// interfaces so the package depends only on device.
type liveCounter interface{ LiveBlocks() int64 }
type dataHolder interface {
	HasData(addr, size units.Bytes) bool
}
type backgrounder interface {
	Background(req device.Request) units.Time
}
type cardStats interface {
	TotalErases() int64
	CopiedBlocks() int64
	HostBlocks() int64
	Stalls() int64
	CleaningTime() units.Time
	HostTime() units.Time
	StallTime() units.Time
}

// New assembles an array over constructed members. Mirror allows N ≥ 1
// (a 1-member mirror is the wrapper-overhead baseline); stripe needs
// N ≥ 2 to stripe anything.
func New(cfg Config, members []Member) (*Array, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("array: block size must be positive")
	}
	min := 1
	if cfg.Mode == Stripe {
		min = 2
	}
	if len(members) < min {
		return nil, fmt.Errorf("array: %s needs at least %d members, have %d", cfg.Mode, min, len(members))
	}
	a := &Array{
		mode:      cfg.Mode,
		blockSize: cfg.BlockSize,
		sysInj:    cfg.SysInj,
		meter:     energy.NewMeter(),
		sc:        cfg.Scope,
	}
	for i, m := range members {
		if m.Dev == nil {
			return nil, fmt.Errorf("array: member %d has no device", i)
		}
		ext, _ := m.Dev.(extentDevice)
		a.members = append(a.members, member{
			Member: m,
			name:   fmt.Sprintf("m%d:%s", i, m.Dev.Name()),
			ext:    ext,
		})
		if m.Inj.DieAt() > 0 || m.Inj.DieAfterErases() > 0 {
			a.mayDie = true
		}
	}
	a.trackAcks = a.mayDie || len(cfg.SysInj.PowerFailSchedule()) > 0
	if cfg.Mode == Mirror && !a.mayDie {
		a.staticFast = true
		for i := range a.members {
			if a.members[i].ext == nil {
				a.staticFast = false
				break
			}
		}
	}
	a.evName = a.Name()
	return a, nil
}

// Name identifies the array and its members.
func (a *Array) Name() string {
	return fmt.Sprintf("%s:%dx%s", a.mode, len(a.members), a.members[0].Dev.Name())
}

// Meter returns the array's own (always empty) meter for interface
// compliance; real energy lives on the member meters — use Meters.
func (a *Array) Meter() *energy.Meter { return a.meter }

// Meters returns every member meter, including members replaced after a
// death: their energy up to the death still belongs to the run.
func (a *Array) Meters() []*energy.Meter {
	var ms []*energy.Meter
	for i := range a.members {
		ms = append(ms, a.members[i].Dev.Meter())
	}
	for _, d := range a.retired {
		ms = append(ms, d.Meter())
	}
	return ms
}

// Members returns the current member devices in slot order.
func (a *Array) Members() []device.Device {
	out := make([]device.Device, len(a.members))
	for i := range a.members {
		out[i] = a.members[i].Dev
	}
	return out
}

// violatef records an array invariant violation on the system injector
// when present, and always on the array's own ledger (merged into
// FaultReport), so the violation is never lost to a fault-free run.
func (a *Array) violatef(format string, args ...any) {
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
	a.sysInj.Violatef(format, args...)
}

// FaultReport merges the member injectors' reports plus the array's own
// violations. Nil when nothing was recorded anywhere.
func (a *Array) FaultReport() *fault.Report {
	var rep *fault.Report
	for i := range a.members {
		if r := a.members[i].Inj.Report(); r != nil {
			if rep == nil {
				rep = &fault.Report{}
			}
			rep.Merge(r)
		}
	}
	if len(a.violations) > 0 {
		if rep == nil {
			rep = &fault.Report{}
		}
		// The system injector already carries these when present; the
		// array's copy covers fault-free configs. Core deduplicates by
		// preferring the system report's violations.
		if a.sysInj == nil {
			rep.Violations = append(rep.Violations, a.violations...)
		}
	}
	return rep
}

// Degraded reports whether any member is currently dead.
func (a *Array) Degraded() bool {
	for i := range a.members {
		if a.members[i].dead {
			return true
		}
	}
	return false
}

// liveCount counts members currently serving.
func (a *Array) liveCount() int {
	n := 0
	for i := range a.members {
		if !a.members[i].dead {
			n++
		}
	}
	return n
}

// checkDeaths fires any member deaths due at or before now: scheduled
// instants (die_at_us) and endurance thresholds (die_after_erases). The
// last live member is never killed — a fully dead array cannot replay a
// trace; configure deaths accordingly.
func (a *Array) checkDeaths(now units.Time) {
	if !a.mayDie {
		return
	}
	for i := range a.members {
		m := &a.members[i]
		if m.died || m.dead || m.Inj == nil {
			continue
		}
		if at := m.Inj.DieAt(); at > 0 && now >= at {
			a.kill(i, at, false)
			continue
		}
		if th := m.Inj.DieAfterErases(); th > 0 {
			if ec, ok := m.Dev.(interface{ TotalErases() int64 }); ok && ec.TotalErases() >= th {
				a.kill(i, now, true)
			}
		}
	}
}

// kill retires member i at the given instant, degrades the array, and —
// for a mirror with a replacement factory — rebuilds the slot.
func (a *Array) kill(i int, at units.Time, eraseDeath bool) {
	if a.liveCount() <= 1 {
		return // never kill the last live member
	}
	m := &a.members[i]
	m.Dev.Finish(at)
	m.dead = true
	m.died = true
	m.Inj.RecordDeath(m.name, int64(i), eraseDeath, at)
	m.Inj.RecordDegraded(a.evName, int64(i), int64(a.liveCount()), at)
	if a.mode == Mirror {
		a.verifyAcked(at, "member death")
		if m.Replace != nil {
			a.rebuild(i, at)
		}
	}
}

// rebuild replaces dead member i with a fresh device and copies the
// acknowledged data onto it from the first surviving member, off both
// devices' critical paths (Background when the device supports it). The
// replacement takes new writes immediately — it must stay in sync — but
// serves reads only once the copy completes.
func (a *Array) rebuild(i int, at units.Time) {
	m := &a.members[i]
	dev, err := m.Replace()
	if err != nil {
		a.violatef("array: rebuilding member %d: %v", i, err)
		return
	}
	src := a.primaryAt(at)
	if src < 0 {
		a.violatef("array: no live member to rebuild %d from at t=%dµs", i, int64(at))
		return
	}
	a.retired = append(a.retired, m.Dev)
	m.Dev = dev
	m.ext, _ = dev.(extentDevice)
	m.dead = false
	m.name = fmt.Sprintf("m%d:%s", i, dev.Name())
	done := at
	var blocks int64
	for _, e := range a.ackedExtents() {
		addr := units.Bytes(e.first) * a.blockSize
		size := units.Bytes(e.n) * a.blockSize
		rd := bgAccess(a.members[src].Dev, device.Request{Time: at, Op: trace.Read, Addr: addr, Size: size})
		wr := bgAccess(dev, device.Request{Time: at, Op: trace.Write, Addr: addr, Size: size})
		done = units.Max(done, units.Max(rd, wr))
		blocks += e.n
	}
	m.readyAt = done
	m.Inj.RecordRebuild(a.evName, int64(i), blocks, at, done-at)
}

// bgAccess performs a rebuild copy operation off the critical path when
// the device supports background work, falling back to a foreground
// access (which contends with host I/O — also honest).
func bgAccess(dev device.Device, req device.Request) units.Time {
	if bg, ok := dev.(backgrounder); ok {
		return bg.Background(req)
	}
	return dev.Access(req)
}

// extent is a contiguous acknowledged block run.
type extent struct {
	first, n int64
}

// ackedExtents returns the acknowledged block set coalesced into
// contiguous extents, capped at 64 blocks each, in ascending block
// order — deterministic, so rebuild copy sequences reproduce exactly.
func (a *Array) ackedExtents() []extent {
	var out []extent
	var runStart, runLen int64 = -1, 0
	flush := func() {
		if runLen > 0 {
			out = append(out, extent{runStart, runLen})
		}
		runStart, runLen = -1, 0
	}
	for b := int64(0); b < a.ackedLen; b++ {
		if a.acked[b>>6]&(1<<uint(b&63)) == 0 {
			flush()
			continue
		}
		if runLen == 0 {
			runStart = b
		}
		runLen++
		if runLen == 64 {
			flush()
		}
	}
	flush()
	return out
}

// ackRange marks blocks [addr, addr+size) acknowledged. A no-op when the
// ledger can never be consulted (no member death, no power failure
// planned) — see trackAcks.
func (a *Array) ackRange(addr, size units.Bytes) {
	if !a.trackAcks {
		return
	}
	first := int64(addr / a.blockSize)
	last := int64((addr + size - 1) / a.blockSize)
	if need := last + 1; need > a.ackedLen {
		words := (need + 63) >> 6
		for int64(len(a.acked)) < words {
			a.acked = append(a.acked, 0)
		}
		a.ackedLen = need
	}
	for b := first; b <= last; b++ {
		a.acked[b>>6] |= 1 << uint(b&63)
	}
}

// unackRange clears blocks wholly covered by a delete: the data is gone
// legitimately, so the invariant no longer claims it.
func (a *Array) unackRange(addr, size units.Bytes) {
	if !a.trackAcks || size <= 0 || a.ackedLen == 0 {
		return
	}
	first := int64(addr / a.blockSize)
	last := int64((addr + size - 1) / a.blockSize)
	if last >= a.ackedLen {
		last = a.ackedLen - 1
	}
	for b := first; b <= last; b++ {
		a.acked[b>>6] &^= 1 << uint(b&63)
	}
}

// verifyAcked proves the recovery invariant: every acknowledged block is
// still present on at least one live member. Members that cannot witness
// presence (no HasData) vouch for everything — a disk holds data in
// place. Called at member deaths and crash recoveries, not per access.
func (a *Array) verifyAcked(at units.Time, when string) {
	var holders []dataHolder
	for i := range a.members {
		m := &a.members[i]
		if m.dead {
			continue
		}
		if h, ok := m.Dev.(dataHolder); ok {
			holders = append(holders, h)
		} else {
			return // an in-place device vouches for every block
		}
	}
	if len(holders) == 0 {
		return
	}
	var lost int64
	for _, e := range a.ackedExtents() {
		addr := units.Bytes(e.first) * a.blockSize
		size := units.Bytes(e.n) * a.blockSize
		held := false
		for _, h := range holders {
			if h.HasData(addr, size) {
				held = true
				break
			}
		}
		if !held {
			// Fall back per block so the count is exact.
			for b := e.first; b < e.first+e.n; b++ {
				ba := units.Bytes(b) * a.blockSize
				blockHeld := false
				for _, h := range holders {
					if h.HasData(ba, a.blockSize) {
						blockHeld = true
						break
					}
				}
				if !blockHeld {
					lost++
				}
			}
		}
	}
	if lost > 0 {
		a.violatef("array: %d acknowledged blocks lost at %s t=%dµs", lost, when, int64(at))
	}
}

// primaryAt returns the first live member ready to serve reads at the
// given instant, preferring fully rebuilt members; -1 if none.
func (a *Array) primaryAt(at units.Time) int {
	fallback := -1
	for i := range a.members {
		m := &a.members[i]
		if m.dead {
			continue
		}
		if m.readyAt <= at {
			return i
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback
}

// Access implements device.Device. The death check is guarded here (and
// at every other call site) rather than inside checkDeaths: its loop
// keeps it from inlining, and on a can-never-die array the call frame
// itself is the overhead.
func (a *Array) Access(req device.Request) units.Time {
	if a.mayDie {
		a.checkDeaths(req.Time)
	}
	if a.mode == Stripe {
		return a.accessStripe(req)
	}
	return a.accessMirror(req)
}

// accessMirror fans writes to every live member (completion = slowest
// replica) and reads to the primary.
func (a *Array) accessMirror(req device.Request) units.Time {
	switch req.Op {
	case trace.Delete:
		for i := range a.members {
			if !a.members[i].dead {
				a.members[i].Dev.Access(req)
			}
		}
		if a.trackAcks {
			a.unackRange(req.Addr, req.Size)
		}
		return req.Time
	case trace.Read:
		p := 0
		if !a.staticFast {
			// With deaths possible the primary must be re-resolved per
			// read; a static mirror always reads member 0.
			p = a.primaryAt(req.Time)
			if p < 0 {
				return req.Time // unreachable: the last member is never killed
			}
		}
		return a.members[p].Dev.Access(req)
	default: // trace.Write
		completion := req.Time
		for i := range a.members {
			if a.members[i].dead {
				continue
			}
			if c := a.members[i].Dev.Access(req); c > completion {
				completion = c
			}
		}
		if a.trackAcks {
			a.ackRange(req.Addr, req.Size)
		}
		// The write is acknowledged once every live replica holds it; an
		// endurance death can fire on the erases this very write caused.
		if a.mayDie {
			a.checkDeaths(completion)
		}
		return completion
	}
}

// accessStripe splits the request across the members owning its blocks.
// Each global block g lives on member g mod N at local block g div N. A
// dead member's share pays the bounded retry/backoff schedule and is
// counted exhausted — the replay cannot branch, a real stack returns EIO.
func (a *Array) accessStripe(req device.Request) units.Time {
	if req.Op == trace.Delete {
		a.forEachShare(req, func(i int, sub device.Request) {
			if !a.members[i].dead {
				a.members[i].Dev.Access(sub)
			}
		})
		return req.Time
	}
	completion := req.Time
	a.forEachShare(req, func(i int, sub device.Request) {
		m := &a.members[i]
		var c units.Time
		if m.dead {
			_, backoff := m.Inj.DeadAttempts(fault.FromTraceOp(sub.Op), m.name, sub.Time)
			c = sub.Time + backoff
		} else {
			c = m.Dev.Access(sub)
		}
		if c > completion {
			completion = c
		}
	})
	return completion
}

// forEachShare decomposes a striped request into per-member sub-requests,
// one per global block (adjacent global blocks live on different
// members), preserving partial first/last blocks.
func (a *Array) forEachShare(req device.Request, fn func(i int, sub device.Request)) {
	n := int64(len(a.members))
	bs := a.blockSize
	end := req.Addr + req.Size
	for addr := req.Addr; addr < end; {
		g := int64(addr / bs)
		blockEnd := units.Bytes(g+1) * bs
		if blockEnd > end {
			blockEnd = end
		}
		chunk := blockEnd - addr
		local := units.Bytes(g/n)*bs + (addr - units.Bytes(g)*bs)
		fn(int(g%n), device.Request{
			Time: req.Time, Op: req.Op, File: req.File, Addr: local, Size: chunk,
		})
		addr += chunk
	}
}

// extentDevice is the optional batched-extent capability members share
// with the core replay loop (see stack.readExtent): a device's extent
// method processes a coalesced run in one call, equivalent by construction
// to Idle(reqs[k].Time) then Access(reqs[k]) per record.
type extentDevice interface {
	ReadExtent(reqs []device.Request, completions []units.Time)
	WriteExtent(reqs []device.Request, completions []units.Time)
}

// extentReady reports whether the batched member-extent fast path is safe
// at the given instant: mirror mode, every member alive, past any rebuild
// read gate, with no death that could still fire mid-run, and extent-
// capable. Anything else falls back to the per-record loop, which defines
// the semantics.
func (a *Array) extentReady(at units.Time) bool {
	if a.staticFast {
		// No member can ever die, so none is ever dead or rebuilding.
		return true
	}
	if a.mode != Mirror {
		return false
	}
	for i := range a.members {
		m := &a.members[i]
		if m.dead || m.readyAt > at {
			return false
		}
		if !m.died && (m.Inj.DieAt() > 0 || m.Inj.DieAfterErases() > 0) {
			return false
		}
		if m.ext == nil {
			return false
		}
	}
	return true
}

// ReadExtent serves a coalesced read run. On the healthy-mirror fast path
// the whole run forwards to the primary member's own extent loop — only
// the primary serves reads, and the other members integrate their
// background work at the next instant they are touched, which for a
// time-integrating device is equivalent to integrating it record by
// record.
func (a *Array) ReadExtent(reqs []device.Request, completions []units.Time) {
	if len(reqs) > 0 && a.extentReady(reqs[0].Time) {
		p := 0
		if !a.staticFast {
			p = a.primaryAt(reqs[0].Time)
		}
		if p >= 0 {
			a.members[p].ext.ReadExtent(reqs, completions)
			return
		}
	}
	for k := range reqs {
		a.Idle(reqs[k].Time)
		completions[k] = a.Access(reqs[k])
	}
}

// WriteExtent fans a coalesced write run to every member, member-major:
// members share no state, so each replays the whole run before the next
// starts, and the per-record completion is the slowest replica's.
func (a *Array) WriteExtent(reqs []device.Request, completions []units.Time) {
	if len(reqs) > 0 && a.extentReady(reqs[0].Time) {
		if cap(a.scratch) < len(reqs) {
			a.scratch = make([]units.Time, len(reqs))
		}
		scratch := a.scratch[:len(reqs)]
		for i := range a.members {
			ed := a.members[i].ext
			if i == 0 {
				ed.WriteExtent(reqs, completions)
				continue
			}
			ed.WriteExtent(reqs, scratch)
			for k := range completions {
				if scratch[k] > completions[k] {
					completions[k] = scratch[k]
				}
			}
		}
		if a.trackAcks {
			for k := range reqs {
				a.ackRange(reqs[k].Addr, reqs[k].Size)
			}
		}
		return
	}
	for k := range reqs {
		a.Idle(reqs[k].Time)
		completions[k] = a.Access(reqs[k])
	}
}

// Idle implements device.Device: death schedules advance and every live
// member integrates idle time and background work.
func (a *Array) Idle(now units.Time) {
	if a.mayDie {
		a.checkDeaths(now)
	}
	for i := range a.members {
		if !a.members[i].dead {
			a.members[i].Dev.Idle(now)
		}
	}
}

// Finish implements device.Device. Dead members were finished at death.
func (a *Array) Finish(now units.Time) {
	if a.mayDie {
		a.checkDeaths(now)
	}
	for i := range a.members {
		if !a.members[i].dead {
			a.members[i].Dev.Finish(now)
		}
	}
}

// Crash implements device.Crasher: the power failure hits every live
// member.
func (a *Array) Crash(at units.Time) {
	for i := range a.members {
		if m := &a.members[i]; !m.dead {
			if cr, ok := m.Dev.(device.Crasher); ok {
				cr.Crash(at)
			}
		}
	}
}

// Recover implements device.Crasher: every live member recovers
// (members recover in parallel — the array is ready when the slowest
// is), then the acknowledged-write invariant is re-proved against the
// survivors.
func (a *Array) Recover(at units.Time) units.Time {
	done := at
	for i := range a.members {
		if m := &a.members[i]; !m.dead {
			if cr, ok := m.Dev.(device.Crasher); ok {
				if d := cr.Recover(at); d > done {
					done = d
				}
			}
		}
	}
	if a.mode == Mirror {
		a.verifyAcked(at, "crash recovery")
	}
	return done
}

// EraseCounts implements device.WearReporter: the concatenated per-unit
// erase counts of every wear-reporting member, replaced devices included.
func (a *Array) EraseCounts() []int64 {
	var out []int64
	each := func(d device.Device) {
		if w, ok := d.(device.WearReporter); ok {
			out = append(out, w.EraseCounts()...)
		}
	}
	for i := range a.members {
		each(a.members[i].Dev)
	}
	for _, d := range a.retired {
		each(d)
	}
	return out
}

// EnduranceCycles implements device.WearReporter.
func (a *Array) EnduranceCycles() int64 {
	for i := range a.members {
		if w, ok := a.members[i].Dev.(device.WearReporter); ok {
			if c := w.EnduranceCycles(); c > 0 {
				return c
			}
		}
	}
	return 0
}

// sumCards folds a flash-card statistic over every member (and replaced
// device) that reports it.
func (a *Array) sumCards(get func(cardStats) int64) int64 {
	var sum int64
	each := func(d device.Device) {
		if cs, ok := d.(cardStats); ok {
			sum += get(cs)
		}
	}
	for i := range a.members {
		each(a.members[i].Dev)
	}
	for _, d := range a.retired {
		each(d)
	}
	return sum
}

// TotalErases aggregates member erase totals.
func (a *Array) TotalErases() int64 {
	return a.sumCards(func(c cardStats) int64 { return c.TotalErases() })
}

// CopiedBlocks aggregates member cleaner copies.
func (a *Array) CopiedBlocks() int64 {
	return a.sumCards(func(c cardStats) int64 { return c.CopiedBlocks() })
}

// HostBlocks aggregates member host-written blocks.
func (a *Array) HostBlocks() int64 {
	return a.sumCards(func(c cardStats) int64 { return c.HostBlocks() })
}

// Stalls aggregates member write stalls.
func (a *Array) Stalls() int64 {
	return a.sumCards(func(c cardStats) int64 { return c.Stalls() })
}

// CleaningTime aggregates member cleaning time.
func (a *Array) CleaningTime() units.Time {
	return units.Time(a.sumCards(func(c cardStats) int64 { return int64(c.CleaningTime()) }))
}

// HostTime aggregates member host service time.
func (a *Array) HostTime() units.Time {
	return units.Time(a.sumCards(func(c cardStats) int64 { return int64(c.HostTime()) }))
}

var (
	_ device.Device       = (*Array)(nil)
	_ device.Crasher      = (*Array)(nil)
	_ device.WearReporter = (*Array)(nil)
)
