package array

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a parsed array topology: a mode plus the member device kinds in
// slot order. Core turns it into constructed members.
type Spec struct {
	Mode Mode
	// Members names each slot's device kind: "flashcard" or "disk".
	Members []string
}

// MemberKinds the spec syntax accepts. "flashcard" members share the
// run's FlashCardParams; "disk" members share its DiskParams.
var MemberKinds = []string{"flashcard", "disk"}

// ParseSpec parses a topology string:
//
//	mirror:2xflashcard       — two mirrored flash cards
//	stripe:3xflashcard       — three striped flash cards
//	mirror:flashcard+disk    — a flash card mirrored with a disk
//
// The count form "<N>x<kind>" expands to N identical members; the "+"
// form lists heterogeneous members explicitly. Mirror accepts N ≥ 1
// (N = 1 is the wrapper-overhead baseline), stripe needs N ≥ 2.
func ParseSpec(s string) (*Spec, error) {
	mode, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("array: spec %q: want \"mirror:...\" or \"stripe:...\"", s)
	}
	spec := &Spec{}
	switch mode {
	case "mirror":
		spec.Mode = Mirror
	case "stripe":
		spec.Mode = Stripe
	default:
		return nil, fmt.Errorf("array: spec %q: unknown mode %q (want mirror or stripe)", s, mode)
	}
	for _, part := range strings.Split(rest, "+") {
		count := 1
		kind := part
		if n, k, ok := strings.Cut(part, "x"); ok {
			c, err := strconv.Atoi(n)
			if err != nil || c < 1 {
				return nil, fmt.Errorf("array: spec %q: bad member count %q", s, n)
			}
			if c > 16 {
				return nil, fmt.Errorf("array: spec %q: %d members exceeds the supported 16", s, c)
			}
			count, kind = c, k
		}
		if !validKind(kind) {
			return nil, fmt.Errorf("array: spec %q: unknown member kind %q (want one of %s)",
				s, kind, strings.Join(MemberKinds, ", "))
		}
		for i := 0; i < count; i++ {
			spec.Members = append(spec.Members, kind)
		}
	}
	min := 1
	if spec.Mode == Stripe {
		min = 2
	}
	if len(spec.Members) < min {
		return nil, fmt.Errorf("array: spec %q: %s needs at least %d members", s, spec.Mode, min)
	}
	if len(spec.Members) > 16 {
		return nil, fmt.Errorf("array: spec %q: %d members exceeds the supported 16", s, len(spec.Members))
	}
	return spec, nil
}

// validKind reports whether kind is a supported member device kind.
func validKind(kind string) bool {
	for _, k := range MemberKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// String renders the spec back to the parse syntax.
func (s *Spec) String() string {
	uniform := true
	for _, m := range s.Members[1:] {
		if m != s.Members[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%s:%dx%s", s.Mode, len(s.Members), s.Members[0])
	}
	return fmt.Sprintf("%s:%s", s.Mode, strings.Join(s.Members, "+"))
}
