package array

import (
	"strings"
	"testing"

	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
)

// fakeDev is a constant-latency member device that records which block
// addresses it has been asked to write, so tests can check fan-out,
// striping geometry, and the acked-data witness.
type fakeDev struct {
	name    string
	latency units.Time
	meter   *energy.Meter
	writes  map[units.Bytes]bool
	reads   int
	deleted int
}

func newFake(name string, latency units.Time) *fakeDev {
	return &fakeDev{name: name, latency: latency, meter: energy.NewMeter(), writes: map[units.Bytes]bool{}}
}

func (f *fakeDev) Access(req device.Request) units.Time {
	switch req.Op {
	case trace.Write:
		for a := req.Addr; a < req.Addr+req.Size; a += units.KB {
			f.writes[a] = true
		}
	case trace.Read:
		f.reads++
	case trace.Delete:
		f.deleted++
	}
	return req.Time + f.latency
}
func (f *fakeDev) Idle(units.Time)      {}
func (f *fakeDev) Finish(units.Time)    {}
func (f *fakeDev) Meter() *energy.Meter { return f.meter }
func (f *fakeDev) Name() string         { return f.name }
func (f *fakeDev) HasData(addr, size units.Bytes) bool {
	for a := addr; a < addr+size; a += units.KB {
		if !f.writes[a] {
			return false
		}
	}
	return true
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		mode    Mode
		members int
		wantErr string
	}{
		{"mirror:2xflashcard", Mirror, 2, ""},
		{"stripe:3xflashcard", Stripe, 3, ""},
		{"mirror:flashcard+disk", Mirror, 2, ""},
		{"mirror:1xflashcard", Mirror, 1, ""},
		{"stripe:1xflashcard", 0, 0, "at least 2"},
		{"raid5:2xflashcard", 0, 0, "unknown mode"},
		{"mirror:2xfloppy", 0, 0, "unknown member kind"},
		{"mirror", 0, 0, "want \"mirror:"},
		{"mirror:0xflashcard", 0, 0, "bad member count"},
		{"mirror:99xflashcard", 0, 0, "exceeds the supported 16"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if sp.Mode != c.mode || len(sp.Members) != c.members {
			t.Errorf("ParseSpec(%q) = %s/%d members", c.in, sp.Mode, len(sp.Members))
		}
		if rt, err := ParseSpec(sp.String()); err != nil || rt.String() != sp.String() {
			t.Errorf("ParseSpec(%q).String() = %q does not round-trip", c.in, sp.String())
		}
	}
}

// TestMirrorFanOut: writes land on every member, reads on one, and the
// completion time is the slowest replica's.
func TestMirrorFanOut(t *testing.T) {
	fast, slow := newFake("fast", units.Millisecond), newFake("slow", 5*units.Millisecond)
	arr, err := New(Config{Mode: Mirror, BlockSize: units.KB},
		[]Member{{Dev: fast}, {Dev: slow}})
	if err != nil {
		t.Fatal(err)
	}
	done := arr.Access(device.Request{Time: 0, Op: trace.Write, Addr: 0, Size: 4 * units.KB})
	if done != 5*units.Millisecond {
		t.Errorf("mirror write completed at %v, want the slow replica's 5ms", done)
	}
	if len(fast.writes) != 4 || len(slow.writes) != 4 {
		t.Errorf("write fan-out: fast=%d slow=%d blocks, want 4 each", len(fast.writes), len(slow.writes))
	}
	arr.Access(device.Request{Time: units.Second, Op: trace.Read, Addr: 0, Size: units.KB})
	if fast.reads+slow.reads != 1 {
		t.Errorf("mirror read hit %d members, want exactly 1", fast.reads+slow.reads)
	}
	arr.Access(device.Request{Time: 2 * units.Second, Op: trace.Delete, Addr: 0, Size: 4 * units.KB})
	if fast.deleted != 1 || slow.deleted != 1 {
		t.Error("delete did not reach every member")
	}
}

// TestStripeGeometry: global block g lives on member g mod N at local
// block g div N, partial blocks preserved.
func TestStripeGeometry(t *testing.T) {
	m0, m1 := newFake("m0", units.Millisecond), newFake("m1", units.Millisecond)
	arr, err := New(Config{Mode: Stripe, BlockSize: units.KB},
		[]Member{{Dev: m0}, {Dev: m1}})
	if err != nil {
		t.Fatal(err)
	}
	// Global blocks 0..3 → m0 gets g0,g2 at local 0,1; m1 gets g1,g3 at local 0,1.
	arr.Access(device.Request{Time: 0, Op: trace.Write, Addr: 0, Size: 4 * units.KB})
	for _, m := range []*fakeDev{m0, m1} {
		if !m.writes[0] || !m.writes[units.KB] || len(m.writes) != 2 {
			t.Errorf("member %s wrote %v, want local blocks 0 and 1", m.name, m.writes)
		}
	}
}

// TestMirrorDeathAndRebuild: killing a member verifies the acked ledger
// against the survivor, rebuilds onto the replacement, and gates reads on
// the rebuilt copy until the copy completes.
func TestMirrorDeathAndRebuild(t *testing.T) {
	m0, m1 := newFake("m0", units.Millisecond), newFake("m1", units.Millisecond)
	var replacement *fakeDev
	plan := &fault.Plan{DieAtUs: 1_000_000}
	inj := fault.NewInjector(plan, 1, nil)
	arr, err := New(Config{Mode: Mirror, BlockSize: units.KB}, []Member{
		{Dev: m0, Inj: inj, Replace: func() (device.Device, error) {
			replacement = newFake("m0b", units.Millisecond)
			return replacement, nil
		}},
		{Dev: m1},
	})
	if err != nil {
		t.Fatal(err)
	}
	arr.Access(device.Request{Time: 0, Op: trace.Write, Addr: 0, Size: 8 * units.KB})
	arr.Idle(2 * units.Second) // past die_at_us: m0 dies, rebuild fires
	if replacement == nil {
		t.Fatal("no replacement built after scheduled death")
	}
	if !replacement.HasData(0, 8*units.KB) {
		t.Error("rebuild did not copy the acknowledged data onto the replacement")
	}
	rep := arr.FaultReport()
	if rep == nil || rep.DeviceDeaths != 1 || rep.Rebuilds != 1 {
		t.Fatalf("report = %+v, want one death and one rebuild", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if arr.Degraded() {
		t.Error("rebuilt mirror still reports degraded")
	}
}

// TestMirrorLostAckedWriteDetected: if the only member holding an
// acknowledged write dies and the survivor does not have the data, the
// ledger must record a violation — the invariant check is real, not
// vacuous.
func TestMirrorLostAckedWriteDetected(t *testing.T) {
	m0, m1 := newFake("m0", units.Millisecond), newFake("m1", units.Millisecond)
	inj := fault.NewInjector(&fault.Plan{DieAtUs: 1_000_000}, 1, nil)
	arr, err := New(Config{Mode: Mirror, BlockSize: units.KB},
		[]Member{{Dev: m1, Inj: inj}, {Dev: m0}})
	if err != nil {
		t.Fatal(err)
	}
	arr.Access(device.Request{Time: 0, Op: trace.Write, Addr: 0, Size: 4 * units.KB})
	// Sabotage the survivor: drop its copy behind the array's back.
	m0.writes = map[units.Bytes]bool{}
	arr.Idle(2 * units.Second)
	rep := arr.FaultReport()
	if rep == nil || len(rep.Violations) == 0 {
		t.Fatal("lost acknowledged write went undetected")
	}
}

// TestLastMemberNeverDies: a death schedule that would kill the only live
// member is suppressed — a fully dead array cannot replay a trace.
func TestLastMemberNeverDies(t *testing.T) {
	m0 := newFake("m0", units.Millisecond)
	inj := fault.NewInjector(&fault.Plan{DieAtUs: 1000}, 1, nil)
	arr, err := New(Config{Mode: Mirror, BlockSize: units.KB}, []Member{{Dev: m0, Inj: inj}})
	if err != nil {
		t.Fatal(err)
	}
	arr.Idle(units.Second)
	done := arr.Access(device.Request{Time: units.Second, Op: trace.Write, Addr: 0, Size: units.KB})
	if done <= units.Second {
		t.Error("sole member stopped serving after its suppressed death")
	}
	if rep := arr.FaultReport(); rep != nil && rep.DeviceDeaths != 0 {
		t.Errorf("sole member recorded %d deaths", rep.DeviceDeaths)
	}
}

// TestStripeDeadShareBackoff: a dead stripe member's shares pay the retry
// schedule instead of serving.
func TestStripeDeadShareBackoff(t *testing.T) {
	m0, m1 := newFake("m0", units.Millisecond), newFake("m1", units.Millisecond)
	inj := fault.NewInjector(&fault.Plan{DieAtUs: 1000, MaxRetries: 2, BackoffUs: 500, MaxBackoffUs: 10_000}, 1, nil)
	arr, err := New(Config{Mode: Stripe, BlockSize: units.KB},
		[]Member{{Dev: m0, Inj: inj}, {Dev: m1}})
	if err != nil {
		t.Fatal(err)
	}
	arr.Idle(units.Second)
	if !arr.Degraded() {
		t.Fatal("stripe member did not die on schedule")
	}
	before := m1.reads
	done := arr.Access(device.Request{Time: units.Second, Op: trace.Read, Addr: 0, Size: 2 * units.KB})
	if m1.reads != before+1 {
		t.Errorf("live member served %d shares, want 1", m1.reads-before)
	}
	if m0.reads != 0 {
		t.Error("dead member served a read")
	}
	// The dead share's completion includes the exponential backoff
	// (500µs + 1000µs), later than the live 1ms share.
	if done < units.Second+1500*units.Microsecond {
		t.Errorf("dead share completed at %v without paying retry backoff", done)
	}
	rep := arr.FaultReport()
	if rep.Exhausted == 0 {
		t.Error("dead share not counted exhausted")
	}
}

func TestNewRejects(t *testing.T) {
	m := newFake("m", units.Millisecond)
	if _, err := New(Config{Mode: Stripe, BlockSize: units.KB}, []Member{{Dev: m}}); err == nil {
		t.Error("1-member stripe accepted")
	}
	if _, err := New(Config{Mode: Mirror, BlockSize: 0}, []Member{{Dev: m}}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{Mode: Mirror, BlockSize: units.KB}, []Member{{}}); err == nil {
		t.Error("nil member device accepted")
	}
}
