package obs

import "testing"

// Microbenchmarks for the per-operation cost of instrumentation. The
// nil-receiver variants are what every simulation pays when no scope is
// attached: a single nil check, no atomics, no allocation. The live
// variants show the worst-case per-event cost with tracing enabled.

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncLive(b *testing.B) {
	c := NewRegistry().Counter("bench.ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(12.5)
	}
}

func BenchmarkHistogramObserveLive(b *testing.B) {
	h := NewRegistry().Histogram("bench.ms", LogBuckets(0.01, 10000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(12.5)
	}
}

func BenchmarkScopeEmitNil(b *testing.B) {
	var sc *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sc.Tracing() {
			sc.Emit(Event{T: int64(i), Kind: EvDiskSpinUp, Dev: "disk"})
		}
	}
}

func BenchmarkScopeEmitRing(b *testing.B) {
	sc := NewScope(nil, NewRing(1<<12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sc.Tracing() {
			sc.Emit(Event{T: int64(i), Kind: EvDiskSpinUp, Dev: "disk"})
		}
	}
}
