package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled to keep the module dependency-free.
// Metric names are namespaced and sanitized ("disk.spin_ups" with namespace
// "storagesim" becomes "storagesim_disk_spin_ups_total"); counters gain the
// conventional _total suffix, gauges are exposed as-is, and histograms emit
// cumulative _bucket{le="..."} series plus _sum and _count. Histograms with
// at least one sample also expose their exact observed extremes as _min and
// _max gauge families — information the bucket edges cannot recover,
// especially for overflow samples. Families are sorted by name so the
// output is deterministic.
func WritePrometheus(w io.Writer, r *Registry, namespace string) error {
	if r == nil {
		return nil
	}
	var b strings.Builder

	counters := r.Counters()
	names := sortedKeys(counters)
	for _, n := range names {
		fam := promName(namespace, n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", fam, fam, counters[n])
	}

	gauges := r.Gauges()
	names = sortedKeys(gauges)
	for _, n := range names {
		fam := promName(namespace, n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", fam, fam, promFloat(gauges[n]))
	}

	hists := r.Histograms()
	names = sortedKeys(hists)
	for _, n := range names {
		h := hists[n]
		fam := promName(namespace, n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", fam, promFloat(bound), cum)
		}
		cum += h.Overflow
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", fam, cum)
		if cum > 0 {
			fmt.Fprintf(&b, "# TYPE %s_min gauge\n%s_min %s\n", fam, fam, promFloat(h.Min))
			fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %s\n", fam, fam, promFloat(h.Max))
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes a dotted metric name into the Prometheus identifier
// charset [a-zA-Z0-9_], prefixed with the namespace.
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(sanitize(namespace))
		b.WriteByte('_')
	}
	b.WriteString(sanitize(name))
	return b.String()
}

func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
