package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Event is one structured simulator event: a device state transition or a
// notable occurrence on the storage path. The payload is three fixed int64
// slots instead of a map so emitting an event never allocates; each Kind
// documents how it uses them (see docs/OBSERVABILITY.md).
type Event struct {
	// T is the simulated time of the event in microseconds.
	T int64
	// Kind names the event ("disk.spinup", "flashcard.erase", ...).
	Kind string
	// Dev is the emitting device's name (may be empty for stack-level
	// events such as cache hits).
	Dev string
	// Addr is an address-like payload: a byte address, segment index, or
	// block number, per Kind.
	Addr int64
	// Size is a size-like payload: bytes, blocks, or sectors, per Kind.
	Size int64
	// Dur is a duration payload in microseconds, per Kind.
	Dur int64
}

// Event kinds emitted by the storage stack.
const (
	// EvDiskSpinUp: the disk's platters start spinning. Dur = how long the
	// disk had been asleep (µs).
	EvDiskSpinUp = "disk.spinup"
	// EvDiskSpinDown: the spin-down policy put the disk to sleep. Dur = the
	// idle threshold that expired (µs).
	EvDiskSpinDown = "disk.spindown"
	// EvSRAMFlush: the SRAM write buffer drained to the device. Size =
	// bytes flushed, Dur = drain duration (µs).
	EvSRAMFlush = "sram.flush"
	// EvSRAMStall: a write waited for buffer space. Dur = wait (µs).
	EvSRAMStall = "sram.stall"
	// EvFlashDiskWrite: a flash-disk write. Size = bytes, Dur = service (µs).
	EvFlashDiskWrite = "flashdisk.write"
	// EvFlashDiskErase: flash-disk sector erasure. Size = sectors erased,
	// Addr = 1 if performed synchronously on the write path, 0 in background.
	EvFlashDiskErase = "flashdisk.erase"
	// EvCardClean: a flash-card cleaning job finished. Addr = victim
	// segment, Size = live blocks copied out, Dur = total job time (µs).
	EvCardClean = "flashcard.clean"
	// EvCardErase: a flash-card segment erasure. Addr = segment, Size = the
	// segment's cumulative erase count after this erasure.
	EvCardErase = "flashcard.erase"
	// EvCardCopy: the cleaner relocated live blocks. Addr = victim segment,
	// Size = blocks copied.
	EvCardCopy = "flashcard.copy"
	// EvCardStall: a host write waited for erased space. Dur = stall (µs).
	EvCardStall = "flashcard.stall"
	// EvCacheHit / EvCacheMiss: DRAM buffer cache lookup outcome. Size =
	// request bytes.
	EvCacheHit  = "cache.hit"
	EvCacheMiss = "cache.miss"
	// EvHybridDestage: the flash cache destaged dirty blocks to disk.
	// Size = blocks destaged, Dur = batch duration (µs).
	EvHybridDestage = "hybrid.destage"
	// EvEnergySample: a sampler snapshot of cumulative energy for one
	// component. Dev = component ("total", "storage", "dram", "sram"),
	// Size = cumulative energy in microjoules since the start of the run.
	// Emitted only when Config.SampleEvery enables the simulated-time
	// sampler; the obsreport energy report is built from these.
	EvEnergySample = "sample.energy"
	// EvIndexWriteAmp: summary of an index-engine workload's write
	// amplification, emitted once when a generated index trace (storagesim
	// -trace index-btree / index-lsm) is replayed. Dev = engine name,
	// Addr = bytes the workload logically changed, Size = bytes the engine
	// physically wrote through its pager. Size/Addr is the index-level
	// amplification the device-level cleaner multiplies on top of.
	EvIndexWriteAmp = "index.writeamp"
	// EvFaultInjected: the fault injector failed one physical attempt.
	// Addr = operation class (0 read, 1 write, 2 erase), Size = the attempt
	// number that failed.
	EvFaultInjected = "fault.injected"
	// EvRetryAttempt: a device retries after a transient fault. Addr =
	// operation class, Size = the attempt number about to run, Dur = the
	// backoff before it (µs).
	EvRetryAttempt = "retry.attempt"
	// EvRemap: a worn-out erase unit was retired. Addr = the unit index,
	// Size = spares remaining after the remap, or -1 when the spare pool was
	// already exhausted and usable capacity degraded instead.
	EvRemap = "remap"
	// EvReclaim: capacity pressure pressed a retired erase unit back into
	// service — live data grew past what the surviving units could hold, so
	// the controller cannibalized the least-worn retired unit rather than
	// wedge. Addr = the unit index.
	EvReclaim = "reclaim"
	// EvPowerFail: an injected power failure. Volatile state is dropped at
	// this instant; recovery runs before the trace resumes.
	EvPowerFail = "power.fail"
	// EvRecoveryReplayed: the post-crash recovery pass replayed
	// battery-backed SRAM contents to the device. Size = blocks replayed,
	// Dur = replay duration (µs).
	EvRecoveryReplayed = "recovery.replayed"
	// EvDeviceDie: a device's per-member fault plan killed it outright
	// (scheduled instant or erase-count endurance death). Addr = member
	// index within its array, Size = 1 for an erase-count death, 0 for a
	// scheduled one.
	EvDeviceDie = "device.die"
	// EvArrayDegraded: a mirrored array lost a member and degraded to
	// serving from the survivors. Addr = the dead member index, Size =
	// surviving member count.
	EvArrayDegraded = "array.degraded"
	// EvArrayRebuild: a mirrored array finished rebuilding a replacement
	// member from the survivors. Addr = the rebuilt member index, Size =
	// blocks copied, Dur = rebuild duration (µs).
	EvArrayRebuild = "array.rebuild"
	// EvFaultLatent: a latent read-disturb/retention fault (seeded silently
	// at write time) surfaced on a read and was scrubbed in place.
	// Addr = first poisoned block in the read range, Size = poisoned blocks
	// surfaced, Dur = the scrub penalty (µs).
	EvFaultLatent = "fault.latent"
	// EvCleaningBacklog: recovery carried an interrupted cleaning job across
	// a power failure and drained it before serving. Addr = the victim
	// segment, Size = live blocks still to relocate at the crash, Dur = the
	// drain time added to recovery (µs).
	EvCleaningBacklog = "cleaning.backlog"
)

// Tracer receives simulator events. Implementations must tolerate
// concurrent Emit calls (parallel experiments may share one tracer).
type Tracer interface {
	Emit(Event)
}

// Tee fans one event stream out to several tracers, forwarding each event
// in argument order. Nil entries are dropped, so callers can tee optional
// sinks without branching; with zero live tracers Tee returns nil, which
// Scope treats as "not tracing" (devices skip event construction).
func Tee(tracers ...Tracer) Tracer {
	live := make(tee, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type tee []Tracer

// Emit implements Tracer.
func (t tee) Emit(e Event) {
	for _, tr := range t {
		tr.Emit(e)
	}
}

// Ring is a fixed-capacity ring-buffer Tracer that keeps the most recent
// events. It is the cheap default for interactive debugging: attach a ring,
// run, then inspect the tail.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   int64
}

// NewRing returns a ring buffer holding up to n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the buffered events in emission order (oldest first).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were emitted over the ring's lifetime,
// including ones the ring has since overwritten.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Collector is an unbounded in-memory Tracer: it appends every kept event
// to a slice. Unlike Ring it never drops history, so analysis code
// (internal/obsreport) can consume a complete stream without a file
// round-trip; bound memory on long runs with a keep filter.
type Collector struct {
	mu     sync.Mutex
	keep   func(Event) bool
	events []Event
}

// NewCollector returns a collector retaining the events keep accepts; a nil
// keep retains everything.
func NewCollector(keep func(Event) bool) *Collector {
	return &Collector{keep: keep}
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	if c.keep != nil && !c.keep(e) {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// NDJSONSink is a Tracer that streams events as newline-delimited JSON.
// Serialization is hand-rolled (no reflection) and zero-value fields are
// omitted, so the format stays byte-deterministic for a deterministic
// simulation — the property the determinism tests pin.
type NDJSONSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewNDJSONSink wraps w in a buffered NDJSON event writer. Call Flush when
// the run completes.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: bufio.NewWriter(w)}
}

// Emit implements Tracer.
func (s *NDJSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [24]byte
	b := s.w
	b.WriteString(`{"t_us":`)
	b.Write(strconv.AppendInt(buf[:0], e.T, 10))
	b.WriteString(`,"kind":"`)
	b.WriteString(e.Kind) // kinds are fixed identifiers, no escaping needed
	b.WriteByte('"')
	if e.Dev != "" {
		b.WriteString(`,"dev":"`)
		b.WriteString(e.Dev) // device names are catalog identifiers
		b.WriteByte('"')
	}
	if e.Addr != 0 {
		b.WriteString(`,"addr":`)
		b.Write(strconv.AppendInt(buf[:0], e.Addr, 10))
	}
	if e.Size != 0 {
		b.WriteString(`,"size":`)
		b.Write(strconv.AppendInt(buf[:0], e.Size, 10))
	}
	if e.Dur != 0 {
		b.WriteString(`,"dur_us":`)
		b.Write(strconv.AppendInt(buf[:0], e.Dur, 10))
	}
	b.WriteString("}\n")
}

// Flush drains the buffer and returns the first write error encountered
// (bufio retains the first error and discards subsequent writes).
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Scope bundles a metrics registry and a tracer for one simulation run and
// is what gets threaded through the storage stack. The nil Scope is fully
// functional and free: every method no-ops or returns a nil (no-op) metric
// handle, so un-instrumented runs pay one nil check per site.
type Scope struct {
	reg *Registry
	tr  Tracer
}

// NewScope builds a scope; either argument may be nil.
func NewScope(reg *Registry, tr Tracer) *Scope {
	if reg == nil && tr == nil {
		return nil
	}
	return &Scope{reg: reg, tr: tr}
}

// Registry returns the scope's registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter resolves a named counter; nil-safe.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name)
}

// Gauge resolves a named gauge; nil-safe.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name)
}

// Histogram resolves a named histogram; nil-safe.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, bounds)
}

// Tracing reports whether events will be recorded; devices use it to skip
// event construction entirely on un-traced runs.
func (s *Scope) Tracing() bool {
	return s != nil && s.tr != nil
}

// Emit records an event if a tracer is attached.
func (s *Scope) Emit(e Event) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Emit(e)
}
