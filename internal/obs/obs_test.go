package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every operation on a nil scope or nil metric must be a no-op: this is
	// the contract that lets devices instrument unconditionally.
	var s *Scope
	s.Counter("x").Inc()
	s.Counter("x").Add(5)
	s.Gauge("g").Set(1.5)
	s.Histogram("h", LogBuckets(1, 10)).Observe(3)
	s.Emit(Event{Kind: "anything"})
	if s.Tracing() {
		t.Error("nil scope reports tracing")
	}
	if s.Registry() != nil {
		t.Error("nil scope has a registry")
	}
	if got := s.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not empty")
	}
	var g *Gauge
	g.Set(2)
	if g.Value() != 0 {
		t.Error("nil gauge holds a value")
	}
	if NewScope(nil, nil) != nil {
		t.Error("NewScope(nil, nil) should collapse to the nil scope")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("disk.spin_ups")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if r.Counter("disk.spin_ups") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("util")
	g.Set(0.8)
	if got := g.Value(); got != 0.8 {
		t.Errorf("gauge = %g", got)
	}
	snap := r.Counters()
	if snap["disk.spin_ups"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", LogBuckets(1e-3, 1e3))
	for _, v := range []float64{0.5, 0.5, 2, 10, 1e9} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	// The 3rd of 5 samples is 2; its bucket's upper edge is ≈2.5.
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Errorf("p50 = %g, want ≈2–4", p50)
	}
	if p40 := h.Quantile(0.4); p40 < 0.5 || p40 > 1 {
		t.Errorf("p40 = %g, want ≈0.5–1", p40)
	}
	if !math.IsInf(h.Quantile(0.999), 1) {
		t.Error("overflow sample should push the tail quantile to +Inf")
	}
	// Bounds must be log-spaced and ascending.
	b := LogBuckets(1, 100)
	if b[0] != 1 || b[len(b)-1] < 100 {
		t.Errorf("LogBuckets(1,100) = %v", b)
	}
}

func TestHistogramMinMax(t *testing.T) {
	var nilH *Histogram
	if nilH.Min() != 0 || nilH.Max() != 0 {
		t.Error("nil histogram extremes should read 0")
	}
	r := NewRegistry()
	h := r.Histogram("lat_ms", LogBuckets(1e-3, 1e3))
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty extremes [%g, %g], want [0, 0]", h.Min(), h.Max())
	}
	for _, v := range []float64{42, 0.25, 1e9, 7} {
		h.Observe(v)
	}
	// Exact, not bucket edges — 1e9 landed in the overflow bucket.
	if h.Min() != 0.25 || h.Max() != 1e9 {
		t.Errorf("extremes [%g, %g], want [0.25, 1e9]", h.Min(), h.Max())
	}
	snap := r.Histograms()["lat_ms"]
	if snap.Min != 0.25 || snap.Max != 1e9 {
		t.Errorf("snapshot extremes [%g, %g], want [0.25, 1e9]", snap.Min, snap.Max)
	}
	if empty := r.Histogram("none", LogBuckets(1, 10)); true {
		s := r.Histograms()["none"]
		if s.Min != 0 || s.Max != 0 || empty.Min() != 0 {
			t.Errorf("empty snapshot extremes [%g, %g], want [0, 0]", s.Min, s.Max)
		}
	}
}

// Concurrent observers must agree on the exact extremes: the CAS loops may
// race but never lose the winning sample.
func TestHistogramMinMaxConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("c", LogBuckets(1, 1e6))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(float64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Min() != 1 || h.Max() != 8000 {
		t.Errorf("extremes [%g, %g], want [1, 8000]", h.Min(), h.Max())
	}
	if h.Count() != 8000 {
		t.Errorf("count %d, want 8000", h.Count())
	}
}

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{T: int64(i)})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	for i, e := range ev {
		if e.T != int64(i+2) {
			t.Errorf("event %d has T=%d, want %d (oldest-first order)", i, e.T, i+2)
		}
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
}

func TestTee(t *testing.T) {
	a := NewCollector(nil)
	b := NewCollector(nil)
	tr := Tee(nil, a, nil, b)
	tr.Emit(Event{T: 1, Kind: EvCacheHit})
	tr.Emit(Event{T: 2, Kind: EvCacheMiss})
	for name, c := range map[string]*Collector{"a": a, "b": b} {
		ev := c.Events()
		if len(ev) != 2 || ev[0].T != 1 || ev[1].T != 2 {
			t.Errorf("tee branch %s saw %v", name, ev)
		}
	}
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee with no live tracers should be nil (not tracing)")
	}
	if Tee(nil, a) != Tracer(a) {
		t.Error("Tee with one live tracer should return it unwrapped")
	}
	// A nil Tee result plugged into a scope means tracing stays off.
	if NewScope(NewRegistry(), Tee(nil)).Tracing() {
		t.Error("scope with nil tee reports Tracing()")
	}
}

func TestNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	s.Emit(Event{T: 42, Kind: EvDiskSpinUp, Dev: "cu140-datasheet", Dur: 1000})
	s.Emit(Event{T: 43, Kind: EvCardErase, Dev: "intel", Addr: 7, Size: 3})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	// Each line must be valid JSON with the expected fields.
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if m["kind"] != EvDiskSpinUp || m["t_us"] != float64(42) || m["dur_us"] != float64(1000) {
		t.Errorf("line 0 = %v", m)
	}
	if _, ok := m["addr"]; ok {
		t.Error("zero addr should be omitted")
	}
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if m["addr"] != float64(7) || m["size"] != float64(3) {
		t.Errorf("line 1 = %v", m)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Metric handles and tracers must be safe under concurrent emitters
	// (parallel experiment sweeps share a scope). Run with -race.
	reg := NewRegistry()
	ring := NewRing(128)
	sc := NewScope(reg, ring)
	c := sc.Counter("shared")
	h := sc.Histogram("h", LogBuckets(1, 1e6))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%100 + 1))
				sc.Emit(Event{T: int64(i), Kind: "x"})
				sc.Counter("shared").Add(0)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if ring.Total() != 8000 {
		t.Errorf("ring total = %d", ring.Total())
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("z.gauge").Set(1.25)
	out := r.String()
	ia, ib := strings.Index(out, "a.first"), strings.Index(out, "b.second")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(out, "1.25") {
		t.Errorf("gauge missing:\n%s", out)
	}
}

// Unregister drops every metric under a prefix (how the fleet service
// expires a retired job's metrics) while held handles keep working.
func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fleet.job.j1.runs_done")
	c.Inc()
	r.Gauge("fleet.job.j1.queue_depth").Set(3)
	r.Histogram("fleet.job.j1.lat", []float64{1, 10}).Observe(2)
	r.Counter("fleet.job.j2.runs_done").Inc()

	r.Unregister("fleet.job.j1.")
	out := r.String()
	if strings.Contains(out, "fleet.job.j1.") {
		t.Errorf("j1 metrics survived Unregister:\n%s", out)
	}
	if !strings.Contains(out, "fleet.job.j2.runs_done") {
		t.Errorf("j2 metrics lost:\n%s", out)
	}
	c.Inc() // stale handle: harmless, just no longer exported
	if got := c.Value(); got != 2 {
		t.Errorf("held handle = %d, want 2", got)
	}
	var nilReg *Registry
	nilReg.Unregister("x") // must not panic
}

// Gauge.Add must not lose updates under concurrency (it backs the fleet
// scheduler's queue-depth and busy-worker gauges) and must tolerate nil.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 12 {
		t.Errorf("Get() = %g, want 12", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 12 {
		t.Errorf("after balanced concurrent adds Get() = %g, want 12", got)
	}

	var nilG *Gauge
	nilG.Add(1) // must not panic
}
