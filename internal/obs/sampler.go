package obs

import "math"

// The simulated-time sampler turns the metrics registry into a time series:
// core.Run ticks it with each trace record's arrival time, and whenever a
// sampling boundary is crossed it snapshots every counter and gauge into a
// Timeline point. Curves (energy over time, cleaning growth, wear) become
// first-class run outputs instead of post-hoc event-stream reconstructions.
//
// Sampling is driven entirely by simulated time, so timelines are exactly
// reproducible across runs and immune to host speed. The nil *Sampler is a
// valid no-op, keeping the disabled path to one nil check per trace record.

// SamplePoint is one snapshot of the registry at a simulated instant.
type SamplePoint struct {
	// TUs is the simulated snapshot time in microseconds.
	TUs int64
	// Counters and Gauges are the registry state at TUs, keyed by name.
	Counters map[string]int64
	Gauges   map[string]float64
}

// Timeline is the ordered sequence of samples from one run: points at every
// interval boundary crossed, plus one final point at the run's end time.
type Timeline struct {
	// IntervalUs is the sampling interval in microseconds.
	IntervalUs int64
	Points     []SamplePoint
}

// Counter returns the series of one counter across the timeline (zero where
// a point lacks the name, e.g. before the metric's first registration).
func (tl *Timeline) Counter(name string) []int64 {
	if tl == nil {
		return nil
	}
	out := make([]int64, len(tl.Points))
	for i, p := range tl.Points {
		out[i] = p.Counters[name]
	}
	return out
}

// Gauge returns the series of one gauge across the timeline.
func (tl *Timeline) Gauge(name string) []float64 {
	if tl == nil {
		return nil
	}
	out := make([]float64, len(tl.Points))
	for i, p := range tl.Points {
		out[i] = p.Gauges[name]
	}
	return out
}

// Sampler snapshots a registry at fixed simulated-time intervals. Drive it
// with Tick as simulated time advances and Finish once at the end of the
// run. Not safe for concurrent use: it belongs to the single simulation
// loop that owns the clock.
type Sampler struct {
	reg        *Registry
	intervalUs int64
	nextUs     int64
	// prepare, when non-nil, runs before every snapshot with the snapshot
	// time; the owner uses it to refresh derived gauges (e.g. cumulative
	// energy) and emit sample events.
	prepare func(tUs int64)
	tl      Timeline
}

// NewSampler returns a sampler over reg taking a snapshot every intervalUs
// of simulated time. Returns nil (a valid no-op sampler) if reg is nil or
// the interval is not positive.
func NewSampler(reg *Registry, intervalUs int64, prepare func(tUs int64)) *Sampler {
	if reg == nil || intervalUs <= 0 {
		return nil
	}
	return &Sampler{
		reg:        reg,
		intervalUs: intervalUs,
		nextUs:     intervalUs,
		prepare:    prepare,
		tl:         Timeline{IntervalUs: intervalUs},
	}
}

// Tick advances simulated time to nowUs, snapshotting once per interval
// boundary crossed since the previous call. Snapshot points are labelled
// with the boundary time; their values are the registry state as of the
// first Tick at or past the boundary, which for core.Run means "after all
// trace records strictly before this record". Nil-safe.
func (s *Sampler) Tick(nowUs int64) {
	if s == nil || nowUs < s.nextUs {
		return
	}
	for nowUs >= s.nextUs {
		s.snapshot(s.nextUs)
		s.nextUs += s.intervalUs
	}
}

// Next returns the simulated time (µs) of the next sampling boundary, or
// math.MaxInt64 for a nil sampler. Batching replay loops use it to prove a
// run of records crosses no boundary, so skipping their individual Ticks is
// unobservable (Tick early-returns for every time before the boundary).
func (s *Sampler) Next() int64 {
	if s == nil {
		return math.MaxInt64
	}
	return s.nextUs
}

// Finish records the final point at the run's end time (even off-boundary),
// so the last sample always equals the run's final counter state. Nil-safe.
func (s *Sampler) Finish(endUs int64) {
	if s == nil {
		return
	}
	for endUs > s.nextUs {
		s.snapshot(s.nextUs)
		s.nextUs += s.intervalUs
	}
	if n := len(s.tl.Points); n == 0 || s.tl.Points[n-1].TUs < endUs {
		s.snapshot(endUs)
	}
}

// Timeline returns the accumulated timeline (nil for a nil sampler).
func (s *Sampler) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return &s.tl
}

func (s *Sampler) snapshot(tUs int64) {
	if s.prepare != nil {
		s.prepare(tUs)
	}
	s.tl.Points = append(s.tl.Points, SamplePoint{
		TUs:      tUs,
		Counters: s.reg.Counters(),
		Gauges:   s.reg.Gauges(),
	})
}
