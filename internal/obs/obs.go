// Package obs is the simulator's observability layer: a zero-dependency,
// allocation-light metrics registry (counters, gauges, histograms with
// fixed log-scale buckets) plus an optional structured event tracer that
// devices emit into at state transitions (disk spin-up/spin-down, SRAM
// flush, flash erase, segment clean, cache hit/miss).
//
// Instrumentation must never change simulation results, so the whole API is
// nil-tolerant: a nil *Scope, nil *Counter, or nil *Histogram is a valid
// no-op receiver, which keeps the un-instrumented hot path to a single nil
// check per site. Metric primitives use atomic operations so a Scope shared
// across parallel experiment workers stays race-free.
//
// See docs/OBSERVABILITY.md for the metric name and event schema reference.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The nil Counter
// discards increments and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n may be any non-negative amount; negative deltas are a
// programming error but are not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric. The nil Gauge discards sets and
// reads as zero.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrease) with a CAS loop, so
// concurrent adjusters — e.g. fleet workers tracking queue depth and busy
// workers — never lose an update.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBucketsPerDecade fixes the histogram resolution: five log-spaced
// buckets per decade, matching the latency histograms the simulator already
// reports.
const histBucketsPerDecade = 5

// Histogram is a fixed-bucket log-scale histogram over positive float64
// samples. Bucket bounds are immutable after construction; observation is a
// binary search plus one atomic increment. The nil Histogram discards
// observations.
type Histogram struct {
	bounds   []float64 // inclusive upper edges, strictly ascending
	counts   []atomic.Int64
	overflow atomic.Int64
	sum      atomicFloat
	// minBits/maxBits track the exact observed extremes (float64 bits,
	// CAS-updated), seeded to ±Inf so the first sample always wins.
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// atomicFloat is a CAS-loop float64 accumulator. Concurrent adds may apply
// in any order, so the low bits of the sum are not reproducible across
// racing emitters; single-threaded simulation runs stay deterministic.
type atomicFloat struct {
	bits atomic.Uint64
}

// Add accumulates v.
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *atomicFloat) Value() float64 {
	return math.Float64frombits(f.bits.Load())
}

// LogBuckets returns log-spaced inclusive upper bounds covering [min, max]
// at five buckets per decade. min and max must be positive with min < max.
func LogBuckets(min, max float64) []float64 {
	if !(min > 0 && max > min) {
		panic(fmt.Sprintf("obs: bad bucket range [%g, %g]", min, max))
	}
	var bounds []float64
	step := 1.0 / histBucketsPerDecade
	for e := math.Log10(min); ; e += step {
		v := math.Pow(10, e)
		bounds = append(bounds, v)
		if v >= max {
			return bounds
		}
	}
}

// newHistogram builds a histogram from ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// casMin lowers the stored extreme to v if v is smaller.
func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMax raises the stored extreme to v if v is larger.
func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= x.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.bounds) {
		h.overflow.Add(1)
	} else {
		h.counts[lo].Add(1)
	}
	h.sum.Add(x)
	casMin(&h.minBits, x)
	casMax(&h.maxBits, x)
}

// Min returns the smallest observed sample, or 0 with no samples. Unlike
// quantiles it is exact: the value is tracked per observation, not derived
// from bucket edges.
func (h *Histogram) Min() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observed sample, or 0 with no samples. Exact even
// for samples in the overflow bucket, where the edges say only "> last
// bound".
func (h *Histogram) Max() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Sum returns the total of all observed samples (used by the Prometheus
// exposition's _sum series and mean estimation).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Count returns the total number of samples recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	t := h.overflow.Load()
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Quantile returns an upper bound on the q-quantile using the bucket edges,
// +Inf if it falls in the overflow bucket, and 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// HistogramSnapshot is an immutable copy of a histogram's state. Min and
// Max are the exact observed extremes (both 0 when the snapshot holds no
// samples).
type HistogramSnapshot struct {
	Bounds   []float64
	Counts   []int64
	Overflow int64
	Sum      float64
	Min      float64
	Max      float64
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	var total int64
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		total += s.Counts[i]
	}
	s.Overflow = h.overflow.Load()
	s.Sum = h.sum.Value()
	if total+s.Overflow > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// Registry holds named metrics. Registration takes a lock; the returned
// metric handles are lock-free, so callers resolve names once at
// construction time and operate on handles in the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later callers share the first registration's bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Unregister drops every metric whose name starts with prefix. Handles
// callers already hold keep working; the metrics simply stop being exported.
// This is how the fleet service expires per-job metrics when it retires old
// jobs.
func (r *Registry) Unregister(prefix string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		if strings.HasPrefix(name, prefix) {
			delete(r.counters, name)
		}
	}
	for name := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			delete(r.gauges, name)
		}
	}
	for name := range r.hists {
		if strings.HasPrefix(name, prefix) {
			delete(r.hists, name)
		}
	}
}

// Counters returns a snapshot of every counter value, keyed by name.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns a snapshot of every gauge value, keyed by name.
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms returns a snapshot of every histogram, keyed by name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.snapshot()
	}
	return out
}

// String renders every metric in sorted order, one per line — the
// deterministic dump behind storagesim's -metrics flag.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	counters := r.Counters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-28s %d\n", n, counters[n])
	}
	gauges := r.Gauges()
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-28s %g\n", n, gauges[n])
	}
	hists := r.Histograms()
	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		var total int64
		for _, c := range h.Counts {
			total += c
		}
		total += h.Overflow
		fmt.Fprintf(&b, "%-28s n=%d p50≤%g p99≤%g\n", n, total,
			snapshotQuantile(h, 0.50), snapshotQuantile(h, 0.99))
	}
	return b.String()
}

// snapshotQuantile mirrors Histogram.Quantile over a snapshot.
func snapshotQuantile(h HistogramSnapshot, q float64) float64 {
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	total += h.Overflow
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return h.Bounds[i]
		}
	}
	return math.Inf(1)
}
