package obs

import (
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("disk.spin_ups").Add(3)
	reg.Counter("cache.hits").Add(41)
	reg.Gauge("energy.total_j").Set(12.5)
	h := reg.Histogram("flashcard.clean_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)                                  // overflow
	reg.Histogram("idle.empty_ms", []float64{1, 10}) // never observed

	var b strings.Builder
	if err := WritePrometheus(&b, reg, "storagesim"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE storagesim_cache_hits_total counter\nstoragesim_cache_hits_total 41\n",
		"# TYPE storagesim_disk_spin_ups_total counter\nstoragesim_disk_spin_ups_total 3\n",
		"# TYPE storagesim_energy_total_j gauge\nstoragesim_energy_total_j 12.5\n",
		"# TYPE storagesim_flashcard_clean_ms histogram\n",
		`storagesim_flashcard_clean_ms_bucket{le="1"} 1`,
		`storagesim_flashcard_clean_ms_bucket{le="10"} 2`,
		`storagesim_flashcard_clean_ms_bucket{le="100"} 2`,
		`storagesim_flashcard_clean_ms_bucket{le="+Inf"} 3`,
		"storagesim_flashcard_clean_ms_sum 5005.5",
		"storagesim_flashcard_clean_ms_count 3",
		// Exact extremes ride along as gauges: 5000 lives in the overflow
		// bucket, where le edges alone could only say "> 100".
		"# TYPE storagesim_flashcard_clean_ms_min gauge\nstoragesim_flashcard_clean_ms_min 0.5\n",
		"# TYPE storagesim_flashcard_clean_ms_max gauge\nstoragesim_flashcard_clean_ms_max 5000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// A histogram with no samples has no meaningful extremes to expose.
	for _, reject := range []string{
		"storagesim_idle_empty_ms_min",
		"storagesim_idle_empty_ms_max",
	} {
		if strings.Contains(out, reject) {
			t.Errorf("unexpected %q in:\n%s", reject, out)
		}
	}

	// Every non-comment line must match the exposition grammar.
	lineRE := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{le="[^"]+"\})? (-?\d+(\.\d+)?([eE][-+]?\d+)?|\+Inf|-Inf|NaN)$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Deterministic across calls.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, reg, "storagesim"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition output not deterministic")
	}

	if err := WritePrometheus(&b, nil, "x"); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"disk.spin_ups": "ns_disk_spin_ups",
		"p99-latency":   "ns_p99_latency",
		"9lives":        "ns__9lives",
	}
	for in, want := range cases {
		if got := promName("ns", in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promName("", "a.b"); got != "a_b" {
		t.Errorf("no-namespace name %q", got)
	}
}
