package obs

import (
	"reflect"
	"testing"
)

func TestSamplerBoundaries(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("ops")

	var prepared []int64
	s := NewSampler(reg, 10, func(tUs int64) { prepared = append(prepared, tUs) })

	// Records at t=3, 12, 37; run ends at 45.
	s.Tick(3) // before the first boundary: no sample
	ops.Inc()
	s.Tick(12) // crosses boundary 10
	ops.Inc()
	s.Tick(37) // crosses 20 and 30
	ops.Inc()
	s.Finish(45) // crosses 40, plus the final point at 45

	tl := s.Timeline()
	if tl.IntervalUs != 10 {
		t.Fatalf("interval %d", tl.IntervalUs)
	}
	wantT := []int64{10, 20, 30, 40, 45}
	if len(tl.Points) != len(wantT) {
		t.Fatalf("%d points, want %d: %+v", len(tl.Points), len(wantT), tl.Points)
	}
	for i, p := range tl.Points {
		if p.TUs != wantT[i] {
			t.Errorf("point %d at %d, want %d", i, p.TUs, wantT[i])
		}
	}
	if !reflect.DeepEqual(prepared, wantT) {
		t.Errorf("prepare times %v, want %v", prepared, wantT)
	}
	// Counter values: boundary 10 sampled during Tick(12), after one Inc at
	// t=3 but before the t=12 record's Inc; 20 and 30 during Tick(37).
	wantOps := []int64{1, 2, 2, 3, 3}
	if got := tl.Counter("ops"); !reflect.DeepEqual(got, wantOps) {
		t.Errorf("ops series %v, want %v", got, wantOps)
	}
}

func TestSamplerFinishOnBoundary(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 10, nil)
	s.Tick(25)
	s.Finish(30)
	tl := s.Timeline()
	wantT := []int64{10, 20, 30}
	if len(tl.Points) != len(wantT) {
		t.Fatalf("%d points, want %d", len(tl.Points), len(wantT))
	}
	for i, p := range tl.Points {
		if p.TUs != wantT[i] {
			t.Errorf("point %d at %d, want %d", i, p.TUs, wantT[i])
		}
	}
}

func TestSamplerShortRun(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 1000, nil)
	s.Tick(3)
	s.Finish(7)
	if got := len(s.Timeline().Points); got != 1 {
		t.Fatalf("%d points, want 1 (final)", got)
	}
	if s.Timeline().Points[0].TUs != 7 {
		t.Fatalf("final point at %d, want 7", s.Timeline().Points[0].TUs)
	}
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Tick(5)    // must not panic
	s.Finish(10) // must not panic
	if s.Timeline() != nil {
		t.Fatal("nil sampler returned a timeline")
	}
	if NewSampler(nil, 10, nil) != nil {
		t.Fatal("sampler without a registry")
	}
	if NewSampler(NewRegistry(), 0, nil) != nil {
		t.Fatal("sampler with zero interval")
	}
}

func TestTimelineGaugeSeries(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("energy.total_j")
	s := NewSampler(reg, 10, nil)
	g.Set(1.5)
	s.Tick(10)
	g.Set(4.25)
	s.Finish(20)
	got := s.Timeline().Gauge("energy.total_j")
	want := []float64{1.5, 4.25}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gauge series %v, want %v", got, want)
	}
	var tl *Timeline
	if tl.Gauge("x") != nil || tl.Counter("x") != nil {
		t.Fatal("nil timeline series not nil")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(nil)
	c.Emit(Event{T: 1, Kind: EvCacheHit})
	c.Emit(Event{T: 2, Kind: EvCardClean, Addr: 3})
	got := c.Events()
	if len(got) != 2 || got[0].T != 1 || got[1].Addr != 3 {
		t.Fatalf("collector events %+v", got)
	}

	filtered := NewCollector(func(e Event) bool { return e.Kind == EvCardClean })
	filtered.Emit(Event{Kind: EvCacheHit})
	filtered.Emit(Event{Kind: EvCardClean})
	if got := filtered.Events(); len(got) != 1 || got[0].Kind != EvCardClean {
		t.Fatalf("filtered events %+v", got)
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} { // last lands in overflow
		h.Observe(v)
	}
	if got := h.Sum(); got != 555.5 {
		t.Fatalf("sum %g, want 555.5", got)
	}
	var nilH *Histogram
	if nilH.Sum() != 0 {
		t.Fatal("nil histogram sum")
	}
	if s := h.snapshot(); s.Sum != 555.5 {
		t.Fatalf("snapshot sum %g", s.Sum)
	}
}
