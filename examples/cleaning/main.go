// Cleaning: flash-card utilization, cleaning policies, and wear.
//
// The paper's §5.2 result is that storage utilization dominates flash-card
// behavior: near capacity, the cleaner copies more live data per reclaimed
// segment, burning energy, delaying writes, and wearing the card out. This
// example reproduces the sweep on the mac workload and then compares the
// three victim-selection policies at high utilization.
//
//	go run ./examples/cleaning
package main

import (
	"fmt"
	"log"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/trace"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	t, err := workload.GenerateByName("mac", 1)
	if err != nil {
		log.Fatal(err)
	}
	params := device.IntelSeries2Datasheet()
	// Fix the card size so every utilization holds the trace footprint.
	seg := params.SegmentSize
	capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.40), seg) * seg

	fmt.Println("Utilization sweep (greedy cleaning):")
	fmt.Printf("%-6s %10s %12s %8s %10s %11s\n",
		"util", "energy (J)", "write (ms)", "erases", "write amp", "max erase")
	for _, util := range []float64{0.40, 0.60, 0.80, 0.90, 0.95} {
		res := run(t, params, capacity, units.Bytes(float64(capacity)*util), "greedy")
		fmt.Printf("%-6.0f %10.0f %12.2f %8d %10.2f %11d\n",
			util*100, res.EnergyJ, res.Write.Mean(), res.Erases,
			res.WriteAmplification(), res.MaxEraseCount)
	}

	fmt.Println("\nCleaning policy comparison at 95% utilization:")
	fmt.Printf("%-14s %10s %12s %8s %10s %11s\n",
		"policy", "energy (J)", "write (ms)", "erases", "write amp", "max erase")
	stored := units.Bytes(float64(capacity) * 0.95)
	for _, policy := range []string{"greedy", "cost-benefit", "fifo"} {
		res := run(t, params, capacity, stored, policy)
		fmt.Printf("%-14s %10.0f %12.2f %8d %10.2f %11d\n",
			policy, res.EnergyJ, res.Write.Mean(), res.Erases,
			res.WriteAmplification(), res.MaxEraseCount)
	}
	fmt.Println("\nGreedy minimizes copying; FIFO wear-levels (lower max erase) at the")
	fmt.Println("cost of copying more live data; cost-benefit sits between them.")
}

func run(t *trace.Trace, params device.FlashCardParams, capacity, stored units.Bytes, policy string) *core.Result {
	cfg := core.Config{
		Trace:           t,
		DRAMBytes:       2 * units.MB,
		Kind:            core.FlashCard,
		FlashCardParams: params,
		FlashCapacity:   capacity,
		StoredData:      stored,
		CleaningPolicy:  policy,
	}
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
