// Fleet: drive the fleet simulation service as an HTTP client.
//
// This is the walkthrough from docs/SERVICE.md as a runnable program. It
// starts an in-process fleet service (the same internal/fleet service
// `storagesim -service` mounts), submits a device × utilization ×
// replica grid over POST /jobs, follows the job's SSE stream at
// /events/<id> printing progress frames as they land, and finishes with
// the fleet aggregate from GET /jobs/<id> — percentile latencies and
// energy across all runs, merged at constant memory. Point the same
// client code at a real `storagesim -service -serve ADDR` and it works
// unchanged.
//
//	go run ./examples/fleet
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"mobilestorage/internal/fleet"
	"mobilestorage/internal/obs"
)

func main() {
	// 1. An in-process service, exactly as -service mounts it. Swap the
	// httptest server for a real base URL to drive a remote instance.
	svc := fleet.NewService(obs.NewRegistry())
	mux := http.NewServeMux()
	svc.RegisterRoutes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// 2. Submit a grid: 2 devices × 3 utilizations × 5 replicas = 30 runs.
	// Replicas re-run the grid with derived workload seeds, so the fleet
	// aggregate carries real cross-run spread, not one sample repeated.
	spec := `{
		"name": "example",
		"devices": ["intel", "sdp10"],
		"utilizations": [0.5, 0.8, 0.95],
		"synth_ops": 5000,
		"replicas": 5,
		"seed": 42
	}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var st fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: %d runs\n", st.ID, st.Total)

	// 3. Follow the SSE stream. Frames arrive in order: progress after
	// every merged run, then one guaranteed terminal "done" frame carrying
	// the final status.
	events, err := http.Get(ts.URL + "/events/" + st.ID)
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()

	var final fleet.Status
	var event string
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "progress":
			var p struct {
				Done    int     `json:"done"`
				Total   int     `json:"total"`
				EnergyJ float64 `json:"energy_j"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				log.Fatal(err)
			}
			if p.Done%10 == 0 && p.Done > 0 {
				fmt.Printf("  %d/%d runs merged, %.0f J so far\n", p.Done, p.Total, p.EnergyJ)
			}
		case strings.HasPrefix(line, "data: ") && event == "done":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if !final.Finished {
		log.Fatal("stream ended without a done frame")
	}

	// 4. The fleet aggregate: distributions and totals across all 30 runs.
	r := final.Report
	fmt.Printf("\n%s: %d runs done, %d failed, %.1f s wall\n",
		final.State, final.Done, final.Failed, final.Runtime)
	fmt.Printf("energy  total %.0f J   per-run p50 %.0f J  p90 %.0f J\n",
		r.Energy.TotalJ, r.Energy.P50PerRunJ, r.Energy.P90PerRunJ)
	fmt.Printf("read    p50 %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms\n",
		r.Read.P50Ms, r.Read.P90Ms, r.Read.P99Ms, r.Read.MaxMs)
	fmt.Printf("write   p50 %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms\n",
		r.Write.P50Ms, r.Write.P90Ms, r.Write.P99Ms, r.Write.MaxMs)
	fmt.Printf("flash   %d erases, write amplification %.2f\n",
		r.Flash.Erases, r.Flash.WriteAmp)

	// The six fleet figures are live at /jobs/<id>/plot/<kind> the whole
	// time; grab one to show they render.
	svg, err := http.Get(ts.URL + "/jobs/" + st.ID + "/plot/latency")
	if err != nil {
		log.Fatal(err)
	}
	defer svg.Body.Close()
	buf := make([]byte, 64)
	n, _ := svg.Body.Read(buf)
	fmt.Printf("figure  /jobs/%s/plot/latency → %s (%s...)\n",
		st.ID, svg.Status, strings.TrimSpace(string(buf[:n])[:20]))
}
