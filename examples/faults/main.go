// Fault injection: run the same workload with and without a fault plan and
// compare what the faults cost.
//
// This walks the fault-injection stack end to end: a declarative fault.Plan
// (the same JSON schema storagesim -faults accepts, see docs/FAULTS.md),
// the deterministic seeded injector threaded through the devices, and the
// fault report — transient-error retries surfacing in latency and energy,
// wear-out retiring erase units to spares, and power failures exercising
// crash/recovery with its no-lost-writes invariant.
//
//	go run ./examples/faults
//
// The equivalent CLI session:
//
//	storagesim -trace dos -device intel -faults examples/faults/plan.json -fault-seed 42 -v
//	storagesim -trace dos -device intel -faults examples/faults/plan.json -events ev.ndjson
//	obsreport faults -in ev.ndjson
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/fault"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	// 1. Load the declarative fault plan — the same file the CLI takes.
	data, err := os.ReadFile("examples/faults/plan.json")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fault.ParsePlan(data)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The dos workload on the Intel flash card, fault-free baseline
	// first, then the same run with the plan injected under seed 42.
	t, err := workload.GenerateByName("dos", 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Trace:           t,
		DRAMBytes:       2 * units.MB,
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
	}
	base, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	col := obs.NewCollector(func(e obs.Event) bool {
		switch e.Kind {
		case obs.EvFaultInjected, obs.EvRetryAttempt, obs.EvRemap,
			obs.EvReclaim, obs.EvPowerFail, obs.EvRecoveryReplayed:
			return true
		}
		return false
	})
	cfg.Faults = plan
	cfg.FaultSeed = 42
	cfg.Scope = obs.NewScope(nil, col)
	faulted, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. What the faults cost. Same trace, same card: every difference is
	// injected.
	fmt.Printf("baseline: %.0f J, write mean %.2f ms\n", base.EnergyJ, base.Write.Mean())
	fmt.Printf("faulted:  %.0f J, write mean %.2f ms\n\n", faulted.EnergyJ, faulted.Write.Mean())

	rep := faulted.Faults
	fmt.Printf("injected %d faults (%d read / %d write / %d erase)\n",
		rep.ReadFaults+rep.WriteFaults+rep.EraseFaults,
		rep.ReadFaults, rep.WriteFaults, rep.EraseFaults)
	fmt.Printf("retries %d (%.1f ms backoff), exhausted %d\n",
		rep.Retries, float64(rep.BackoffTime)/1e3, rep.Exhausted)
	fmt.Printf("wear-out: %d units remapped to spares, %d past the pool\n",
		rep.Remaps, rep.SparesExhausted)
	fmt.Printf("power failures: %d, replayed %d blocks, lost %d writes, %d violations\n\n",
		rep.PowerFailures, rep.ReplayedBlocks, rep.LostWrites, len(rep.Violations))

	// 4. The same summary the CLI derives from an NDJSON capture:
	// `obsreport faults -in ev.ndjson`.
	fmt.Println("--- obsreport faults ---")
	if err := obsreport.WriteFaults(os.Stdout, obsreport.Faults(col.Events()), obsreport.Text); err != nil {
		log.Fatal(err)
	}

	// 5. Determinism: the same plan and seed reproduce the exact run.
	again, err := core.Run(core.Config{
		Trace:           t,
		DRAMBytes:       2 * units.MB,
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
		Faults:          plan,
		FaultSeed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame seed reproduces the run exactly: %v\n",
		again.EnergyJ == faulted.EnergyJ && reflect.DeepEqual(again.Faults, faulted.Faults))
}
