// Observability: sample a run over simulated time and analyze its event
// stream in-process.
//
// This wires together the three pieces of the observability stack:
// a registry + tracer scope on core.Run, the simulated-time sampler
// (Config.SampleEvery) producing an energy/metric timeline, and the
// obsreport analyzers deriving cleaning and wear reports from the
// captured events — the same analysis `cmd/obsreport` runs on an NDJSON
// file written with `storagesim -events`.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/obs"
	"mobilestorage/internal/obsreport"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	// 1. The dos workload on the Intel flash card at 90% utilization —
	// high enough that the cleaner has real work to report on.
	t, err := workload.GenerateByName("dos", 1)
	if err != nil {
		log.Fatal(err)
	}
	seg := device.IntelSeries2Datasheet().SegmentSize
	capacity := units.CeilDiv(units.Bytes(float64(core.Footprint(t))/0.9), seg) * seg

	// 2. Attach a registry (for the sampler) and a collector tracer that
	// keeps only the cleaning- and wear-related events.
	reg := obs.NewRegistry()
	col := obs.NewCollector(func(e obs.Event) bool {
		switch e.Kind {
		case obs.EvCardClean, obs.EvCardErase, obs.EvCardStall:
			return true
		}
		return false
	})

	res, err := core.Run(core.Config{
		Trace:           t,
		DRAMBytes:       2 * units.MB,
		Kind:            core.FlashCard,
		FlashCardParams: device.IntelSeries2Datasheet(),
		FlashCapacity:   capacity,
		StoredData:      units.Bytes(float64(capacity) * 0.9),
		SampleEvery:     units.FromSeconds(60), // snapshot every simulated minute
		Scope:           obs.NewScope(reg, col),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The sampler timeline: energy and counters at every boundary.
	fmt.Printf("run: %.0f J over %.0f simulated seconds, %d timeline points\n\n",
		res.EnergyJ, float64(res.EndTime)/1e6, len(res.Timeline.Points))
	// The gauge is cumulative from t=0; Result.EnergyJ excludes the
	// warm-up window, so the final sample is slightly larger (they are
	// equal when Config.WarmFraction disables warm-up).
	last := res.Timeline.Points[len(res.Timeline.Points)-1]
	fmt.Printf("final sample: t=%.0f s, energy.total_j=%.1f\n\n",
		float64(last.TUs)/1e6, last.Gauges["energy.total_j"])

	// 4. Derived reports from the captured events.
	events := col.Events()
	fmt.Println("--- cleaning ---")
	if err := obsreport.WriteCleaning(os.Stdout, obsreport.Cleaning(events), obsreport.Text); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- wear ---")
	if err := obsreport.WriteWear(os.Stdout, obsreport.Wear(events), obsreport.Text); err != nil {
		log.Fatal(err)
	}
}
