// Flashcache: the fourth architecture — flash as a cache for disk blocks.
//
// The paper's related work (§6) points at Marsh, Douglis & Krishnan's
// proposal to put a flash card between the buffer cache and the disk so
// the disk can stay spun down. This example runs that hybrid against the
// paper's pure-disk and pure-flash configurations on the hp workload (the
// one with day-scale idle periods) and sweeps the flash cache size.
//
//	go run ./examples/flashcache
package main

import (
	"fmt"
	"log"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	t, err := workload.GenerateByName("hp", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %12s %12s %12s %10s\n",
		"configuration", "energy (J)", "read (ms)", "write (ms)", "spin-ups")

	// Baseline: the paper's power-managed disk.
	disk := core.Config{
		Trace: t, Kind: core.MagneticDisk, Disk: device.CU140Datasheet(),
		SpinDown: 5 * units.Second, SRAMBytes: 32 * units.KB,
	}
	report("cu140 + 5s spin-down + SRAM", disk)

	// The hybrid at several cache sizes: bigger caches absorb more of the
	// read working set, so the disk wakes less.
	for _, cacheMB := range []int{4, 8, 16, 24} {
		cfg := core.Config{
			Trace: t, Kind: core.FlashCache,
			Disk:            device.CU140Datasheet(),
			FlashCardParams: device.IntelSeries2Datasheet(),
			SpinDown:        2 * units.Second,
			FlashCacheBytes: units.Bytes(cacheMB) * units.MB,
		}
		report(fmt.Sprintf("cu140 + %d MB flash cache", cacheMB), cfg)
	}

	// Reference: pure flash (no disk at all).
	flash := core.Config{
		Trace: t, Kind: core.FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
		FlashCapacity: 40 * units.MB, StoredData: 32 * units.MB,
	}
	report("intel flash card (no disk)", flash)

	fmt.Println("\nThe hybrid keeps the disk's capacity while the flash cache absorbs")
	fmt.Println("reads and writes, letting the disk sleep through the hp trace's long")
	fmt.Println("idle periods; pure flash remains the energy floor.")
}

func report(label string, cfg core.Config) {
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %12.0f %12.2f %12.2f %10d\n",
		label, res.EnergyJ, res.Read.Mean(), res.Write.Mean(), res.SpinUps)
}
