// Batterylife: translate storage energy savings into battery life.
//
// The paper's motivating claim: the storage subsystem consumes 20–54% of a
// notebook's energy [Marsh & Zenel], so replacing the disk with flash —
// which saves ~90% of storage energy even against an aggressively
// spun-down disk — extends battery life by 20–100%, with "a 22% extension"
// as the headline at a 20% storage share. This example recomputes the whole
// chain from simulation results.
//
//	go run ./examples/batterylife
package main

import (
	"fmt"
	"log"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/energy"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	t, err := workload.GenerateByName("mac", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the CU140 with the paper's full power management — 5 s
	// spin-down and a 32 KB deferred-spin-up write buffer.
	disk := core.Config{
		Trace: t, DRAMBytes: 2 * units.MB,
		Kind: core.MagneticDisk, Disk: device.CU140Datasheet(),
		SpinDown: 5 * units.Second, SRAMBytes: 32 * units.KB,
	}
	baseline, err := core.Run(disk)
	if err != nil {
		log.Fatal(err)
	}

	// Alternative: the Intel flash card at the paper's 80% utilization.
	flash := core.Config{
		Trace: t, DRAMBytes: 2 * units.MB,
		Kind: core.FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
		FlashCapacity: 40 * units.MB, StoredData: 32 * units.MB,
	}
	alternative, err := core.Run(flash)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("storage energy, disk (CU140 + power mgmt): %8.0f J\n", baseline.EnergyJ)
	fmt.Printf("storage energy, flash (Intel card):        %8.0f J\n", alternative.EnergyJ)
	fmt.Println()
	fmt.Printf("%-14s %16s %14s\n", "storage share", "storage savings", "battery life")
	for _, share := range []float64{0.20, 0.35, 0.54} {
		m := energy.BatteryModel{
			StorageFraction: share,
			BaselineJ:       baseline.EnergyJ,
			AlternativeJ:    alternative.EnergyJ,
		}
		fmt.Printf("%13.0f%% %15.0f%% %+13.0f%%\n",
			share*100, m.StorageSavings()*100, m.LifeExtension()*100)
	}
	fmt.Println("\nAt the 20% storage share the paper's headline '22% extension of")
	fmt.Println("battery life' falls out directly; at Marsh & Zenel's 54% upper")
	fmt.Println("bound the extension approaches a doubling, matching §1.")
}
