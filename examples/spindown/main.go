// Spindown: explore the disk spin-down policy trade-off.
//
// The paper picks a 5 s spin-down threshold as "a good compromise between
// energy consumption and response time" (§5.1, citing Douglis et al. and
// Li et al.). This example sweeps the threshold on the hp workload — the
// one with long idle periods — and shows the trade-off directly: short
// thresholds save idle energy but pay spin-up delays and spin-up energy;
// long thresholds burn idle watts.
//
//	go run ./examples/spindown
package main

import (
	"fmt"
	"log"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	t, err := workload.GenerateByName("hp", 1)
	if err != nil {
		log.Fatal(err)
	}

	thresholds := []units.Time{
		0, // never spin down
		1 * units.Second,
		2 * units.Second,
		5 * units.Second, // the paper's choice
		15 * units.Second,
		60 * units.Second,
		5 * units.Minute,
	}

	fmt.Printf("%-12s %12s %10s %14s %14s\n",
		"threshold", "energy (J)", "spin-ups", "read mean(ms)", "read max(ms)")
	for _, th := range thresholds {
		cfg := core.Config{
			Trace: t,
			// hp was captured below the buffer cache: no DRAM (§4.1).
			Kind:      core.MagneticDisk,
			Disk:      device.CU140Datasheet(),
			SpinDown:  th,
			SRAMBytes: 32 * units.KB,
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := th.String()
		if th == 0 {
			label = "never"
		}
		fmt.Printf("%-12s %12.0f %10d %14.1f %14.0f\n",
			label, res.EnergyJ, res.SpinUps, res.Read.Mean(), res.Read.Max())
	}
	fmt.Println("\nShort thresholds trade read latency (spin-ups on the critical path)")
	fmt.Println("for idle energy; 'never' pays the full idle draw for 4.4 days.")
}
