// Quickstart: compare the three storage architectures on the mac workload.
//
// This is the smallest end-to-end use of the library: generate a workload,
// configure one simulation per architecture, and print the paper-style
// energy and response-time comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilestorage/internal/core"
	"mobilestorage/internal/device"
	"mobilestorage/internal/units"
	"mobilestorage/internal/workload"
)

func main() {
	// 1. Generate the mac workload (calibrated to the paper's Table 3).
	t, err := workload.GenerateByName("mac", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. One configuration per architecture, with the paper's defaults:
	// 2 MB DRAM cache, 5 s disk spin-down + 32 KB SRAM write buffer,
	// flash devices 40 MB at 80% utilization.
	configs := []core.Config{
		{
			Trace: t, DRAMBytes: 2 * units.MB,
			Kind: core.MagneticDisk, Disk: device.CU140Datasheet(),
			SpinDown: 5 * units.Second, SRAMBytes: 32 * units.KB,
		},
		{
			Trace: t, DRAMBytes: 2 * units.MB,
			Kind: core.FlashDisk, FlashDiskParams: device.SDP5Datasheet(),
			FlashCapacity: 40 * units.MB, StoredData: 32 * units.MB,
		},
		{
			Trace: t, DRAMBytes: 2 * units.MB,
			Kind: core.FlashCard, FlashCardParams: device.IntelSeries2Datasheet(),
			FlashCapacity: 40 * units.MB, StoredData: 32 * units.MB,
		},
	}

	// 3. Run and compare.
	fmt.Printf("%-28s %10s %12s %12s\n", "device", "energy (J)", "read (ms)", "write (ms)")
	var diskEnergy float64
	for i, cfg := range configs {
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.0f %12.2f %12.2f\n",
			res.Device, res.EnergyJ, res.Read.Mean(), res.Write.Mean())
		if i == 0 {
			diskEnergy = res.EnergyJ
		} else {
			fmt.Printf("%-28s %9.1f×\n", "  energy vs. disk", diskEnergy/res.EnergyJ)
		}
	}
}
