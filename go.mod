module mobilestorage

go 1.22
