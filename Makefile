GO ?= go

.PHONY: build vet fmt-check test test-diff race bench bench-smoke bench-gate bench-gate-faults bench-gate-array bench-gate-update profile-fig2 profile-fig4 fuzz-smoke golden-update serve-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Differential equivalence suite: the full trace × device × cache × fault
# matrix replayed through the frozen reference loop and the optimized loop,
# requiring byte-identical results, event streams, and observer logs, plus
# the physics property tests. See docs/PERFORMANCE.md.
test-diff:
	$(GO) test ./internal/core/difftest/ -v -run 'TestRunEquivalence|TestPrepEquivalence|TestEquivalenceWithWrongPrep|TestHybridExtentTrimEquivalence|TestArrayEquivalence|TestArrayMirrorMatchesSingle|TestResponseProperties|TestEnergyProperties|TestWarmSnapshotConservation|TestWearProperties|FuzzRunEquivalence'

# Race-detector pass over the whole module; the parallel experiment sweeps
# and shared observability scopes are what this guards.
race:
	$(GO) test -race ./...

# Observability overhead guard plus the rest of the benchmarks.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that stop
# compiling or crash, without measuring anything.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The repo-root figure benchmarks replay full paper simulations, so one
# iteration is a whole run; best-of-3 with a wider threshold than the
# obsreport microbenchmarks (single-iteration full runs jitter more).
FIGURE_BENCH = ^(BenchmarkTable[1-4]|BenchmarkFig[1-4]|BenchmarkFig2Seq|BenchmarkExtentCoalesce|BenchmarkIndex(BTree|LSM))

# Regression gate: re-measure the obsreport benchmarks and the paper-figure
# benchmarks and fail when any gets slower or allocation-heavier than the
# committed baseline (30% for both; the hot-path overhaul made full runs
# fast enough that the figure gate no longer needs its old 50% slack).
# benchdiff keeps the best of the -count runs, which damps scheduler noise
# on shared runners.
bench-gate:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1s -count=3 ./internal/obsreport/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_obsreport.json
	$(GO) test -run='^$$' -bench='$(FIGURE_BENCH)' -benchmem -benchtime=1x -count=5 . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_figures.json -threshold 0.3
	$(MAKE) bench-gate-faults
	$(MAKE) bench-gate-array

# Fault-layer overhead budget: the armed-but-quiet fault run must stay
# within 2% of the plan-free hot path. Both benchmarks run in the same
# process and are compared best-of-3 against each other (benchdiff -ratio),
# so machine speed cancels and the tight threshold holds on shared runners.
bench-gate-faults:
	$(GO) test -run='^$$' -bench='^Benchmark(RunNilScope|FaultOff)$$' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/benchdiff -ratio BenchmarkFaultOff/BenchmarkRunNilScope -threshold 0.02

# Array-layer overhead budget: the same simulation through a one-member
# mirror must stay within 5% of the bare flash card — the composite-device
# wrapper (fan-out, acked ledger, death checks) on its healthy path.
# The pairs are interleaved (separate count=1 runs, best-of over the
# concatenated output) instead of grouped with -count: go test runs all
# samples of one benchmark before the other, so on a busy runner slow
# minutes land entirely on one side of the ratio; interleaving keeps
# each pair seconds apart.
bench-gate-array:
	{ for i in 1 2 3 4 5; do \
		$(GO) test -run='^$$' -bench='^Benchmark(RunNilScope|ArrayMirror)$$' -benchtime=2s -count=1 . || exit 1; \
	done; } | $(GO) run ./cmd/benchdiff -ratio BenchmarkArrayMirror/BenchmarkRunNilScope -threshold 0.05

# Refresh the committed baselines after an intentional perf change; review
# the diff before committing.
bench-gate-update:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1s -count=3 ./internal/obsreport/ \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_obsreport.json -update
	$(GO) test -run='^$$' -bench='$(FIGURE_BENCH)' -benchmem -benchtime=1x -count=5 . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_figures.json -update

# CPU and allocation profiles of the two headline figure replays; open the
# output with `go tool pprof cpu-fig2.pprof`. Ten iterations give pprof's
# 100 Hz sampler enough samples for a stable flat profile.
profile-fig2:
	$(GO) test -run='^$$' -bench='^BenchmarkFig2$$' -benchtime=10x \
		-cpuprofile cpu-fig2.pprof -memprofile mem-fig2.pprof .
profile-fig4:
	$(GO) test -run='^$$' -bench='^BenchmarkFig4$$' -benchtime=10x \
		-cpuprofile cpu-fig4.pprof -memprofile mem-fig4.pprof .

# End-to-end fleet-service smoke: boot `storagesim -service`, submit a
# grid job over the HTTP API, poll it to completion, fetch every fleet
# figure and the dashboard, then SIGINT and require a graceful 130 exit.
# See docs/SERVICE.md.
serve-smoke:
	sh scripts/serve_smoke.sh

# Short coverage-guided fuzz burst over the simulator core.
fuzz-smoke:
	MOBILESTORAGE_FUZZ_SMOKE=1 $(GO) test ./internal/core -run TestFuzzSmoke -v

# Regenerate the golden files (core results and SVG figures) after an
# intentional behavior change; review the diff before committing.
golden-update:
	$(GO) test ./internal/core -run TestGolden -update
	$(GO) test ./internal/plot ./internal/obsreport -run 'TestGolden|TestGridGolden' -update
	$(GO) test ./internal/index -run TestTraceGolden -update

check: fmt-check vet test race
