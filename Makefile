GO ?= go

.PHONY: build vet test race bench fuzz-smoke golden-update check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole module; the parallel experiment sweeps
# and shared observability scopes are what this guards.
race:
	$(GO) test -race ./...

# Observability overhead guard plus the rest of the benchmarks.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Short coverage-guided fuzz burst over the simulator core.
fuzz-smoke:
	MOBILESTORAGE_FUZZ_SMOKE=1 $(GO) test ./internal/core -run TestFuzzSmoke -v

# Regenerate the golden files after an intentional behavior change; review
# the diff before committing.
golden-update:
	$(GO) test ./internal/core -run TestGolden -update

check: vet test race
